"""Tests for query planning: bin/chunk selection and alignment."""

import numpy as np
import pytest

from repro.binning.binner import BinScheme
from repro.core.chunking import ChunkGrid
from repro.core.planner import plan_query
from repro.core.query import Query
from repro.sfc.hierarchical import hierarchical_order
from repro.sfc.linearize import chunk_curve_order


@pytest.fixture()
def setup():
    grid = ChunkGrid((64, 64), (16, 16))
    curve = chunk_curve_order(grid.grid_shape, "hilbert")
    scheme = BinScheme(np.linspace(0.0, 10.0, 11))
    return grid, curve, scheme


class TestBinSelection:
    def test_vc_selects_overlapping_bins(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(value_range=(2.5, 4.5)))
        assert plan.bin_ids.tolist() == [2, 3, 4]
        assert plan.aligned.tolist() == [False, True, False]

    def test_no_vc_selects_all_bins_aligned(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((0, 16), (0, 16))))
        assert plan.bin_ids.size == 10
        assert plan.aligned.all()

    def test_is_aligned_lookup(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(value_range=(2.5, 4.5)))
        assert not plan.is_aligned(2)
        assert plan.is_aligned(3)


class TestChunkSelection:
    def test_sc_selects_overlapping_chunks(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((0, 16), (0, 16))))
        assert plan.chunk_ids.tolist() == [0]
        assert plan.interior.tolist() == [True]

    def test_boundary_chunks_not_interior(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((8, 24), (0, 16))))
        assert sorted(plan.chunk_ids.tolist()) == [0, 4]
        assert not plan.interior.any()

    def test_no_sc_selects_all_interior(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(value_range=(0.0, 1.0)))
        assert plan.cpos.size == grid.n_chunks
        assert plan.interior.all()
        assert plan.region is None

    def test_cpos_sorted_for_sequential_io(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((8, 56), (8, 56))))
        assert np.all(np.diff(plan.cpos) > 0)
        # cpos/chunk_ids stay aligned through the sort
        assert np.array_equal(curve.positions_of(plan.chunk_ids), plan.cpos)

    def test_interior_of_vectorized(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((8, 24), (0, 16))))
        flags = plan.interior_of(plan.cpos)
        assert np.array_equal(flags, plan.interior)


class TestPlanLookupValidation:
    """Unknown ids must fail loudly, never return garbage flags."""

    def test_is_aligned_unknown_bin(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(value_range=(2.5, 4.5)))
        for bad in (0, 5, 99):
            with pytest.raises(ValueError, match=f"bin {bad}"):
                plan.is_aligned(bad)

    def test_chunk_is_interior_unknown_position(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((0, 16), (0, 16))))
        known = int(plan.cpos[0])
        assert plan.chunk_is_interior(known) is True
        for bad in (known + 1, 10_000):
            with pytest.raises(ValueError, match="not part of this plan"):
                plan.chunk_is_interior(bad)

    def test_interior_of_unknown_positions(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((8, 24), (0, 16))))
        bad = np.append(plan.cpos, 10_000)
        with pytest.raises(ValueError, match="10000"):
            plan.interior_of(bad)

    def test_interior_of_empty_query_on_empty_plan(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(grid, curve, scheme, Query(region=((0, 16), (0, 16))))
        plan.cpos = plan.cpos[:0]
        plan.interior = plan.interior[:0]
        assert plan.interior_of(np.empty(0, dtype=np.int64)).size == 0
        with pytest.raises(ValueError, match="not part of this plan"):
            plan.interior_of(np.array([3]))


class TestBlockRefs:
    def test_cartesian_product(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(
            grid, curve, scheme, Query(value_range=(2.5, 4.5), region=((0, 16), (0, 16)))
        )
        refs = plan.block_refs()
        assert len(refs) == plan.n_blocks == 3 * 1
        assert {r.bin_id for r in refs} == {2, 3, 4}

    def test_block_list_matches_refs(self, setup):
        grid, curve, scheme = setup
        plan = plan_query(
            grid, curve, scheme, Query(value_range=(2.5, 6.5), region=((0, 32), (0, 32)))
        )
        work = plan.block_list()
        assert len(work) == plan.n_blocks
        assert work.to_refs() == plan.block_refs()
        # Bin-major: bins arrive in sorted runs, cpos sorted within each.
        assert np.array_equal(work.bin_ids, np.sort(work.bin_ids))


class TestSubsetResolution:
    def test_resolution_restricts_to_prefix(self):
        grid = ChunkGrid((64, 64), (8, 8))  # 8x8 chunk grid
        curve = hierarchical_order(grid.grid_shape)
        scheme = BinScheme(np.linspace(0, 1, 5))
        plan = plan_query(
            grid, curve, scheme, Query(resolution_level=1), hierarchical=True
        )
        assert plan.cpos.size == 4  # levels 0..1 of an 8x8 grid
        assert plan.cpos.max() < 4

    def test_resolution_beyond_max_is_full(self):
        grid = ChunkGrid((64, 64), (8, 8))
        curve = hierarchical_order(grid.grid_shape)
        scheme = BinScheme(np.linspace(0, 1, 5))
        plan = plan_query(
            grid, curve, scheme, Query(resolution_level=99), hierarchical=True
        )
        assert plan.cpos.size == grid.n_chunks

    def test_resolution_requires_hierarchical_store(self, setup):
        grid, curve, scheme = setup
        with pytest.raises(ValueError, match="hierarchical"):
            plan_query(grid, curve, scheme, Query(resolution_level=1))


class TestQueryValidation:
    def test_output_checked(self):
        with pytest.raises(ValueError, match="output"):
            Query(output="rows")

    def test_value_range_checked(self):
        with pytest.raises(ValueError, match="empty"):
            Query(value_range=(2.0, 1.0))

    def test_plod_level_checked(self):
        for bad in (0, 8):
            with pytest.raises(ValueError):
                Query(plod_level=bad)

    def test_resolution_level_checked(self):
        with pytest.raises(ValueError):
            Query(resolution_level=-1)

    def test_wants_values(self):
        assert Query(output="values").wants_values
        assert not Query(output="positions").wants_values
