"""Tests for the simulated PFS: namespace, accounting, cache, striping."""

import numpy as np
import pytest

from repro.pfs.costmodel import PFSCostModel
from repro.pfs.simfs import SimulatedPFS


@pytest.fixture()
def fs() -> SimulatedPFS:
    return SimulatedPFS(PFSCostModel(ost_count=4, stripe_size=16))


class TestNamespace:
    def test_create_write_read(self, fs):
        fs.write_file("/a/b", b"hello world")
        assert fs.exists("/a/b")
        assert fs.size("/a/b") == 11
        assert fs.session().open("/a/b").read_all() == b"hello world"

    def test_create_no_overwrite(self, fs):
        fs.create("/x")
        with pytest.raises(FileExistsError):
            fs.create("/x", overwrite=False)

    def test_append_returns_offset(self, fs):
        fs.create("/x")
        assert fs.append("/x", b"abc") == 0
        assert fs.append("/x", b"de") == 3
        assert fs.size("/x") == 5

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.size("/nope")
        with pytest.raises(FileNotFoundError):
            fs.session().open("/nope")

    def test_delete(self, fs):
        fs.write_file("/x", b"1")
        fs.delete("/x")
        assert not fs.exists("/x")
        with pytest.raises(FileNotFoundError):
            fs.delete("/x")

    def test_list_and_total(self, fs):
        fs.write_file("/d/a", b"12")
        fs.write_file("/d/b", b"345")
        fs.write_file("/e/c", b"6")
        assert fs.list_files("/d/") == ["/d/a", "/d/b"]
        assert fs.total_bytes("/d/") == 5
        assert fs.total_bytes() == 6

    def test_stat(self, fs):
        fs.write_file("/s", bytes(40))
        st = fs.stat("/s")
        assert st.size == 40
        assert st.n_stripes == 3  # 40 bytes over 16-byte stripes
        assert 0 <= st.first_ost < 4


class TestReadAccounting:
    def test_open_counted_once_per_session(self, fs):
        fs.write_file("/f", bytes(100))
        s = fs.session()
        s.open("/f")
        s.open("/f")
        assert s.stats.opens == 1
        s2 = fs.session()
        s2.open("/f")
        assert s2.stats.opens == 1

    def test_seek_on_discontinuity_only(self, fs):
        fs.write_file("/f", bytes(100))
        s = fs.session()
        h = s.open("/f")
        h.read(0, 10)      # first read: 1 seek
        h.read(10, 10)     # sequential: no seek
        h.read(50, 10)     # jump: seek
        h.read(60, 5)      # sequential again
        assert s.stats.seeks == 2
        assert s.stats.reads == 4

    def test_out_of_range_read(self, fs):
        fs.write_file("/f", bytes(10))
        h = fs.session().open("/f")
        with pytest.raises(ValueError, match="out of range"):
            h.read(5, 10)
        with pytest.raises(ValueError, match="out of range"):
            h.read(-1, 2)

    def test_bytes_distributed_across_osts(self, fs):
        fs.write_file("/f", bytes(64))  # 4 stripes of 16 over 4 OSTs
        s = fs.session()
        s.open("/f").read(0, 64)
        assert s.stats.bytes_read == 64
        # Every OST gets exactly one stripe.
        assert sorted(s.ost_bytes.tolist()) == [16.0, 16.0, 16.0, 16.0]

    def test_partial_stripe_read(self, fs):
        fs.write_file("/f", bytes(64))
        s = fs.session()
        s.open("/f").read(8, 16)  # second half of stripe 0 + first half of stripe 1
        nonzero = np.sort(s.ost_bytes[s.ost_bytes > 0])
        assert nonzero.tolist() == [8.0, 8.0]


class TestCache:
    def test_cached_rereads_free(self, fs):
        fs.write_file("/f", bytes(100))
        s1 = fs.session()
        s1.open("/f").read(0, 100)
        assert s1.stats.bytes_read == 100
        s2 = fs.session()
        s2.open("/f").read(20, 50)
        assert s2.stats.bytes_read == 0

    def test_partial_overlap_charges_cold_bytes(self, fs):
        fs.write_file("/f", bytes(100))
        s1 = fs.session()
        s1.open("/f").read(0, 50)
        s2 = fs.session()
        s2.open("/f").read(25, 50)  # 25 warm + 25 cold
        assert s2.stats.bytes_read == 25

    def test_clear_cache(self, fs):
        fs.write_file("/f", bytes(100))
        fs.session().open("/f").read(0, 100)
        fs.clear_cache()
        s = fs.session()
        s.open("/f").read(0, 100)
        assert s.stats.bytes_read == 100

    def test_overwrite_drops_cache(self, fs):
        fs.write_file("/f", bytes(100))
        fs.session().open("/f").read(0, 100)
        fs.write_file("/f", bytes(100))
        s = fs.session()
        s.open("/f").read(0, 100)
        assert s.stats.bytes_read == 100

    def test_interval_merging(self, fs):
        fs.write_file("/f", bytes(100))
        s = fs.session()
        h = s.open("/f")
        h.read(0, 30)
        h.read(30, 30)
        h.read(10, 40)  # fully covered by [0, 60)
        assert s.stats.bytes_read == 60


class TestSerialSeconds:
    def test_session_serial_time_positive(self, fs):
        fs.write_file("/f", bytes(1000))
        s = fs.session()
        s.open("/f").read(0, 1000)
        assert s.serial_seconds() > 0
