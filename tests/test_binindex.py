"""Tests for the per-bin position index codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.binindex import decode_position_block, encode_position_block


def _chunks_from_sets(position_sets):
    return [np.array(sorted(s), dtype=np.int64) for s in position_sets]


class TestRoundtrip:
    def test_basic(self):
        chunks = _chunks_from_sets([{0, 5, 6}, {2}, set(), {100, 101}])
        payload = encode_position_block(chunks)
        out = decode_position_block(payload, np.array([3, 1, 0, 2]))
        for got, want in zip(out, chunks):
            assert np.array_equal(got, want)

    def test_empty_block(self):
        payload = encode_position_block([])
        out = decode_position_block(payload, np.array([], dtype=np.int64))
        assert out == []

    def test_all_empty_chunks(self):
        payload = encode_position_block([np.array([], dtype=np.int64)] * 3)
        out = decode_position_block(payload, np.array([0, 0, 0]))
        assert all(a.size == 0 for a in out)

    def test_large_positions(self):
        chunks = [np.array([2**40, 2**40 + 1, 2**50], dtype=np.int64)]
        payload = encode_position_block(chunks)
        out = decode_position_block(payload, np.array([3]))
        assert np.array_equal(out[0], chunks[0])

    def test_compresses_regular_strides(self, rng):
        """Within-chunk positions have regular strides, the whole point
        of delta encoding: the index should be far below 8 B/position."""
        chunks = [np.arange(0, 4096, 2, dtype=np.int64) + i * 5000 for i in range(20)]
        payload = encode_position_block(chunks)
        n_positions = sum(c.size for c in chunks)
        assert len(payload) < n_positions  # < 1 byte per position


class TestValidation:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            encode_position_block([np.array([3, 1])])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            encode_position_block([np.array([1, 1])])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            encode_position_block([np.array([-1, 2])])

    def test_count_mismatch_detected(self):
        payload = encode_position_block([np.array([1, 2, 3])])
        with pytest.raises(ValueError):
            decode_position_block(payload, np.array([2]))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.sets(st.integers(min_value=0, max_value=10_000), max_size=50),
        min_size=1,
        max_size=12,
    )
)
def test_roundtrip_property(position_sets):
    chunks = _chunks_from_sets(position_sets)
    payload = encode_position_block(chunks)
    counts = np.array([c.size for c in chunks])
    out = decode_position_block(payload, counts)
    assert len(out) == len(chunks)
    for got, want in zip(out, chunks):
        assert np.array_equal(got, want)
