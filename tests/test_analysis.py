"""Tests for the analysis kernels (histogram migration, K-means)."""

import numpy as np
import pytest

from repro.analysis.histogram import equal_width_histogram, histogram_migration_error
from repro.analysis.kmeans import assign_clusters, kmeans, kmeans_misclassification


class TestHistogram:
    def test_equal_width_counts(self, rng):
        v = rng.uniform(0, 10, 10_000)
        counts, edges = equal_width_histogram(v, 10)
        assert counts.sum() == 10_000
        width = (v.max() - v.min()) / 10
        assert np.allclose(np.diff(edges), width, rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            equal_width_histogram(np.array([]), 5)
        with pytest.raises(ValueError):
            equal_width_histogram(np.array([1.0]), 0)

    def test_zero_error_for_identical(self, rng):
        v = rng.uniform(0, 1, 1000)
        assert histogram_migration_error(v, v.copy(), 50) == 0.0

    def test_full_error_for_shifted(self, rng):
        v = rng.uniform(0, 1, 1000)
        shifted = v + 10.0  # all clamp into the last bin
        err = histogram_migration_error(v, shifted, 50)
        assert err > 0.9

    def test_error_scales_with_noise(self, rng):
        v = rng.uniform(0, 1, 50_000)
        small = histogram_migration_error(v, v + rng.normal(0, 1e-4, v.size), 100)
        large = histogram_migration_error(v, v + rng.normal(0, 1e-2, v.size), 100)
        assert small < large

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            histogram_migration_error(np.zeros(3), np.zeros(4))


class TestKMeans:
    def _blobs(self, rng, n=600):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        points = np.concatenate(
            [c + rng.normal(0, 0.5, (n // 3, 2)) for c in centers]
        )
        labels = np.repeat(np.arange(3), n // 3)
        return points, labels

    def test_recovers_separated_blobs(self, rng):
        points, truth = self._blobs(rng)
        _, labels = kmeans(points, 3, n_iters=50, seed=0)
        # Same partition up to label permutation: check pair agreement.
        same_truth = truth[:, None] == truth[None, :]
        same_found = labels[:, None] == labels[None, :]
        agreement = (same_truth == same_found).mean()
        assert agreement > 0.99

    def test_centroids_near_truth(self, rng):
        points, _ = self._blobs(rng)
        centroids, _ = kmeans(points, 3, n_iters=50, seed=1)
        found = np.sort(centroids.round(0), axis=0)
        expected = np.sort(np.array([[0, 0], [10, 0], [0, 10]]), axis=0)
        assert np.allclose(found, expected, atol=1.0)

    def test_k_validation(self, rng):
        points = rng.uniform(0, 1, (10, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 11)
        with pytest.raises(ValueError):
            kmeans(points.reshape(-1), 2)

    def test_assign_clusters_nearest(self):
        centroids = np.array([[0.0], [10.0]])
        points = np.array([[1.0], [9.0], [4.9]])
        assert assign_clusters(points, centroids).tolist() == [0, 1, 0]

    def test_deterministic_given_seed(self, rng):
        points, _ = self._blobs(rng)
        _, a = kmeans(points, 3, seed=7)
        _, b = kmeans(points, 3, seed=7)
        assert np.array_equal(a, b)


class TestMisclassification:
    def test_zero_for_identical(self, rng):
        v = rng.uniform(0, 100, (2000, 2))
        assert kmeans_misclassification(v, v.copy(), k=4, n_iters=20, repeats=1) == 0.0

    def test_grows_with_degradation(self, rng):
        v = rng.uniform(1, 100, 5000)
        mild = v * (1 + rng.normal(0, 1e-5, v.size))
        harsh = v * (1 + rng.normal(0, 0.2, v.size))
        e_mild = kmeans_misclassification(v, mild, k=6, n_iters=20, repeats=1)
        e_harsh = kmeans_misclassification(v, harsh, k=6, n_iters=20, repeats=1)
        assert e_mild < e_harsh

    def test_1d_inputs_accepted(self, rng):
        v = rng.uniform(0, 1, 500)
        assert kmeans_misclassification(v, v, k=3, n_iters=10, repeats=1) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kmeans_misclassification(np.zeros(5), np.zeros(6))
