"""Tests for the ASCII figure renderer."""

import pytest

from repro.harness.asciiplot import bar_chart, stacked_bars


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart("T", {"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_values_printed(self):
        text = bar_chart("T", {"x": 1.234})
        assert "1.23" in text

    def test_zero_values(self):
        text = bar_chart("T", {"a": 0.0})
        assert "|" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("T", {})


class TestStackedBars:
    def test_glyph_proportions(self):
        text = stacked_bars(
            "F", {"sys": [3.0, 1.0]}, ["io", "cpu"], width=40
        )
        bar_line = text.splitlines()[2]
        assert bar_line.count("#") == 30
        assert bar_line.count("=") == 10

    def test_legend_present(self):
        text = stacked_bars("F", {"s": [1.0]}, ["io"])
        assert "#=io" in text

    def test_shared_scale(self):
        text = stacked_bars(
            "F", {"big": [4.0, 0.0], "small": [1.0, 0.0]}, ["a", "b"], width=20
        )
        lines = text.splitlines()
        assert lines[2].count("#") == 20
        assert lines[3].count("#") == 5

    def test_component_count_checked(self):
        with pytest.raises(ValueError, match="2 values"):
            stacked_bars("F", {"s": [1.0, 2.0]}, ["only-one"])

    def test_too_many_components(self):
        with pytest.raises(ValueError, match="at most"):
            stacked_bars("F", {"s": [1.0] * 5}, ["a", "b", "c", "d", "e"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stacked_bars("F", {}, ["io"])


class TestSVGPlot:
    def test_valid_svg_document(self):
        from repro.harness.svgplot import stacked_bar_svg

        svg = stacked_bar_svg(
            "Fig X", {"sys-a": [1.0, 2.0], "sys-b": [3.0, 0.5]}, ["io", "cpu"]
        )
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") >= 2 + 4  # legend swatches + segments
        assert "Fig X" in svg and "sys-a" in svg

    def test_escaping(self):
        from repro.harness.svgplot import stacked_bar_svg

        svg = stacked_bar_svg("a < b & c", {"r<1>": [1.0]}, ["io"])
        assert "a &lt; b &amp; c" in svg
        assert "r&lt;1&gt;" in svg

    def test_zero_segments_omitted(self):
        from repro.harness.svgplot import stacked_bar_svg

        svg = stacked_bar_svg("T", {"r": [0.0, 1.0]}, ["a", "b"])
        # exactly: 2 legend swatches + 1 bar segment
        assert svg.count("<rect") == 3

    def test_validation(self):
        from repro.harness.svgplot import stacked_bar_svg

        with pytest.raises(ValueError, match="at least one"):
            stacked_bar_svg("T", {}, ["a"])
        with pytest.raises(ValueError, match="2 values"):
            stacked_bar_svg("T", {"r": [1.0, 2.0]}, ["only"])
        with pytest.raises(ValueError, match="negative"):
            stacked_bar_svg("T", {"r": [-1.0]}, ["a"])

    def test_save(self, tmp_path):
        from repro.harness.svgplot import save_figure_svg

        out = save_figure_svg(tmp_path / "f.svg", "T", {"r": [1.0]}, ["io"])
        assert out.exists()
        assert out.read_text().startswith("<svg")
