"""Edge-case integration tests across the MLOC stack."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_iso
from repro.datasets import gts_like
from repro.pfs import PFSCostModel, SimulatedPFS


class TestOneDimensionalData:
    def test_1d_roundtrip(self):
        """The paper's GTS data is natively 1-D; the stack must handle
        rank-1 arrays end to end."""
        fs = SimulatedPFS()
        rng = np.random.default_rng(0)
        data = np.cumsum(rng.normal(0, 0.1, 4096)) + 10.0
        cfg = mloc_iso(chunk_shape=(256,), n_bins=8, target_block_bytes=4096)
        MLOCWriter(fs, "/d1", cfg).write(data, variable="signal")
        store = MLOCStore.open(fs, "/d1", "signal", n_ranks=2)
        lo, hi = np.quantile(data, [0.3, 0.5])
        r = store.query(Query(value_range=(lo, hi), output="values"))
        expect = np.flatnonzero((data >= lo) & (data <= hi))
        assert np.array_equal(r.positions, expect)
        assert np.array_equal(r.values, data[expect])
        r2 = store.query(Query(region=((1000, 2000),), output="values"))
        assert np.array_equal(r2.values, data[1000:2000])


class TestSingleChunkAndSingleBin:
    def test_single_chunk_store(self):
        fs = SimulatedPFS()
        data = gts_like((32, 32), seed=1)
        cfg = mloc_col(chunk_shape=(32, 32), n_bins=4, target_block_bytes=2048)
        MLOCWriter(fs, "/one", cfg).write(data, variable="f")
        store = MLOCStore.open(fs, "/one", "f")
        r = store.query(Query(region=((0, 32), (0, 32)), output="values"))
        assert np.array_equal(r.values, data.reshape(-1))

    def test_single_bin_store(self):
        fs = SimulatedPFS()
        data = gts_like((64, 64), seed=2)
        cfg = mloc_iso(chunk_shape=(16, 16), n_bins=1, target_block_bytes=4096)
        MLOCWriter(fs, "/bin1", cfg).write(data, variable="f")
        store = MLOCStore.open(fs, "/bin1", "f")
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.2, 0.8])
        r = store.query(Query(value_range=(lo, hi), output="positions"))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))


class TestExtremeConstraints:
    @pytest.fixture(scope="class")
    def store(self):
        fs = SimulatedPFS()
        data = gts_like((128, 128), seed=3)
        cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
        MLOCWriter(fs, "/x", cfg).write(data, variable="f")
        return fs, data, MLOCStore.open(fs, "/x", "f", n_ranks=4)

    def test_infinite_value_range(self, store):
        fs, data, s = store
        r = s.query(Query(value_range=(-np.inf, np.inf), output="positions"))
        assert r.n_results == data.size
        # Every bin is aligned for an unbounded constraint.
        assert r.stats["aligned_bins"] == r.stats["bins_accessed"]

    def test_point_value_constraint(self, store):
        fs, data, s = store
        target = float(data[5, 5])
        r = s.query(Query(value_range=(target, target), output="positions"))
        assert (5 * 128 + 5) in r.positions.tolist()
        flat = data.reshape(-1)
        assert np.array_equal(r.positions, np.flatnonzero(flat == target))

    def test_full_domain_region(self, store):
        fs, data, s = store
        r = s.query(Query(region=((0, 128), (0, 128)), output="values"))
        assert np.array_equal(r.values, data.reshape(-1))

    def test_region_of_one_chunk_row(self, store):
        fs, data, s = store
        r = s.query(Query(region=((0, 16), (0, 128)), output="values"))
        assert r.n_results == 16 * 128

    def test_constraint_below_all_values(self, store):
        fs, data, s = store
        below = float(data.min()) - 10.0
        r = s.query(Query(value_range=(below - 1, below), output="positions"))
        assert r.n_results == 0

    def test_more_ranks_than_blocks(self, store):
        fs, data, s = store
        many = s.with_ranks(64)
        lo, hi = np.quantile(data.reshape(-1), [0.50, 0.51])
        r = many.query(Query(value_range=(lo, hi), region=((0, 16), (0, 16))))
        flat = data.reshape(-1)
        mask = np.zeros(data.shape, bool)
        mask[:16, :16] = True
        expect = np.flatnonzero(mask.reshape(-1) & (flat >= lo) & (flat <= hi))
        assert np.array_equal(r.positions, expect)


class TestCostModelPropagation:
    def test_byte_scale_scales_query_times(self):
        data = gts_like((64, 64), seed=4)
        cfg = mloc_iso(chunk_shape=(16, 16), n_bins=4, target_block_bytes=4096)
        totals = {}
        for scale in (1.0, 64.0):
            fs = SimulatedPFS(PFSCostModel(byte_scale=scale))
            MLOCWriter(fs, "/s", cfg).write(data, variable="f")
            store = MLOCStore.open(fs, "/s", "f", n_ranks=2)
            fs.clear_cache()
            r = store.query(Query(region=((0, 32), (0, 32)), output="values"))
            totals[scale] = r.times
        # Transfer-bound components scale with the factor.
        assert totals[64.0].decompression == pytest.approx(
            64 * totals[1.0].decompression, rel=1e-6
        )
        assert totals[64.0].io > totals[1.0].io

    def test_explicit_cpu_scale(self):
        data = gts_like((64, 64), seed=5)
        cfg = mloc_iso(chunk_shape=(16, 16), n_bins=4, target_block_bytes=4096)
        fs = SimulatedPFS(PFSCostModel(byte_scale=8.0, cpu_scale=1.0))
        MLOCWriter(fs, "/s", cfg).write(data, variable="f")
        store = MLOCStore.open(fs, "/s", "f", n_ranks=2)
        r = store.query(Query(region=((0, 16), (0, 16)), output="values"))
        # Reconstruction uses cpu_scale (=1), decompression uses
        # byte_scale (=8); both must be finite and non-negative.
        assert r.times.reconstruction >= 0
        assert r.times.decompression > 0
