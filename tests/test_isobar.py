"""ISOBAR-specific tests: plane selection mechanism and framing."""

import numpy as np
import pytest

from repro.compression.isobar import (
    IsobarCodec,
    compress_planes,
    decompress_planes,
)


class TestPlaneSelection:
    def test_smooth_data_compresses_high_planes_only(self, rng):
        """The ISOBAR mechanism: sign/exponent planes of smooth science
        data deflate well; low mantissa planes are stored raw."""
        v = np.cumsum(rng.normal(0, 1e-3, 40_000)) + 500.0
        codec = IsobarCodec()
        payload = codec.encode(v)
        width = 8
        modes = payload[:width]
        assert modes[0] == 1  # top byte plane compressed
        assert modes[7] == 0  # lowest mantissa plane raw
        assert len(payload) < v.nbytes

    def test_random_data_stays_raw(self, rng):
        v = rng.uniform(-1e300, 1e300, 5_000)
        payload = IsobarCodec().encode(v)
        # Bounded expansion: header only (8 modes + 32 lengths).
        assert len(payload) <= v.nbytes + 8 + 32 + 8

    def test_threshold_extremes(self, rng):
        v = np.cumsum(rng.normal(0, 1e-3, 10_000)) + 500.0
        eager = IsobarCodec(threshold=1.0).encode(v)
        never = IsobarCodec(threshold=1e-9).encode(v)
        assert len(eager) < len(never)
        # Both decode identically.
        assert np.array_equal(
            IsobarCodec(threshold=1.0).decode(eager, v.size),
            IsobarCodec(threshold=1e-9).decode(never, v.size),
        )

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            IsobarCodec(threshold=0.0)
        with pytest.raises(ValueError):
            IsobarCodec(threshold=1.5)


class TestPlaneFraming:
    def test_roundtrip_arbitrary_width(self, rng):
        matrix = rng.integers(0, 256, (1000, 3), dtype=np.uint8)
        payload = compress_planes(matrix)
        assert np.array_equal(decompress_planes(payload, 1000, 3), matrix)

    def test_rejects_non_uint8(self):
        with pytest.raises(ValueError, match="uint8"):
            compress_planes(np.zeros((4, 2), dtype=np.int32))

    def test_truncated_payload(self):
        with pytest.raises(ValueError, match="too short"):
            decompress_planes(b"\x00", 4, 8)

    def test_bad_plane_mode(self, rng):
        matrix = rng.integers(0, 256, (16, 1), dtype=np.uint8)
        payload = bytearray(compress_planes(matrix))
        payload[0] = 9  # corrupt the mode byte
        with pytest.raises(ValueError, match="unknown plane mode"):
            decompress_planes(bytes(payload), 16, 1)

    def test_wrong_count(self, rng):
        matrix = rng.integers(0, 256, (16, 2), dtype=np.uint8)
        payload = compress_planes(matrix)
        with pytest.raises(ValueError, match="expected"):
            decompress_planes(payload, 15, 2)
