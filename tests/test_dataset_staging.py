"""Tests for the multi-variable dataset facade and in-situ stager."""

import numpy as np
import pytest

from repro.core import (
    InSituStager,
    MLOCDataset,
    Query,
    StagingOverflow,
    mloc_col,
)
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture()
def dataset():
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    return MLOCDataset(fs, "/sim", config, n_ranks=4)


class TestMLOCDataset:
    def test_write_and_query_variable(self, dataset):
        data = gts_like((64, 64), seed=1)
        report = dataset.write(data, "temp")
        assert report.raw_bytes == data.nbytes
        store = dataset.store("temp")
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        r = store.query(Query(value_range=(lo, hi), output="positions"))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))

    def test_timestep_catalog(self, dataset):
        for t in (0, 1, 5):
            dataset.write(gts_like((64, 64), seed=t), "temp", timestep=t)
        dataset.write(gts_like((64, 64), seed=9), "grid_mask")
        assert dataset.timesteps("temp") == [0, 1, 5]
        assert "grid_mask" in dataset.variables()
        assert "temp@000005" in dataset.variables()

    def test_timesteps_are_independent_stores(self, dataset):
        a = gts_like((64, 64), seed=1)
        b = gts_like((64, 64), seed=2)
        dataset.write(a, "temp", timestep=0)
        dataset.write(b, "temp", timestep=1)
        r0 = dataset.store("temp", 0).query(Query(region=((0, 8), (0, 8))))
        r1 = dataset.store("temp", 1).query(Query(region=((0, 8), (0, 8))))
        assert np.array_equal(r0.values, a[:8, :8].reshape(-1))
        assert np.array_equal(r1.values, b[:8, :8].reshape(-1))

    def test_rewrite_invalidates_cached_store(self, dataset):
        a = gts_like((64, 64), seed=1)
        dataset.write(a, "temp")
        _ = dataset.store("temp")
        b = a + 1.0
        dataset.write(b, "temp")
        r = dataset.store("temp").query(Query(region=((0, 4), (0, 4))))
        assert np.allclose(r.values, b[:4, :4].reshape(-1))

    def test_multi_variable_query(self, dataset):
        temp = gts_like((64, 64), seed=3)
        hum = gts_like((64, 64), seed=4)
        dataset.write(temp, "temp", timestep=2)
        dataset.write(hum, "humidity", timestep=2)
        lo = float(np.quantile(temp, 0.9))
        result = dataset.multi_variable_query(
            "temp", ["humidity"], (lo, float(temp.max())), timestep=2
        )
        expect = np.flatnonzero(temp.reshape(-1) >= lo)
        assert np.array_equal(result.positions, expect)
        assert np.array_equal(result.values["humidity"], hum.reshape(-1)[expect])

    def test_bad_variable_name(self, dataset):
        with pytest.raises(ValueError, match="must not contain"):
            dataset.write(gts_like((64, 64), seed=0), "a@b")

    def test_total_bytes(self, dataset):
        dataset.write(gts_like((64, 64), seed=0), "x")
        assert dataset.total_bytes() > 0


class TestInSituStager:
    def test_process_snapshots(self, dataset):
        stager = InSituStager(dataset)
        for t in range(3):
            stager.process("temp", t, gts_like((64, 64), seed=t))
        report = stager.report
        assert report.snapshots == 3
        assert report.raw_bytes == 3 * 64 * 64 * 8
        assert 0 < report.compression_ratio < 1.2
        assert report.encode_throughput > 0
        assert report.raw_drain_seconds > 0
        # Everything landed queryable.
        assert dataset.timesteps("temp") == [0, 1, 2]

    def test_buffering_and_drain(self, dataset):
        stager = InSituStager(dataset, buffer_bytes=1 << 20)
        stager.push("v", 0, gts_like((64, 64), seed=0))
        stager.push("v", 1, gts_like((64, 64), seed=1))
        assert stager.pending_bytes == 2 * 64 * 64 * 8
        stager.drain()
        assert stager.pending_bytes == 0
        assert stager.report.snapshots == 2

    def test_overflow_backpressure(self, dataset):
        stager = InSituStager(dataset, buffer_bytes=64 * 64 * 8)
        stager.push("v", 0, gts_like((64, 64), seed=0))
        with pytest.raises(StagingOverflow, match="buffer full"):
            stager.push("v", 1, gts_like((64, 64), seed=1))
        stager.drain()
        stager.push("v", 1, gts_like((64, 64), seed=1))  # fits again

    def test_buffer_size_validated(self, dataset):
        with pytest.raises(ValueError):
            InSituStager(dataset, buffer_bytes=0)
