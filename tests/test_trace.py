"""Tests for query-trace recording and replay."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.harness.trace import QueryTrace, ReplayReport, TracingStore, replay_trace
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def traced_setup():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=9)
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    MLOCWriter(fs, "/t", cfg).write(data, variable="f")
    store = MLOCStore.open(fs, "/t", "f", n_ranks=4)
    return fs, data, store


class TestQueryTraceSerialization:
    def test_roundtrip(self, tmp_path):
        trace = QueryTrace()
        trace.append(Query(value_range=(1.0, 2.0), output="positions"))
        trace.append(Query(region=((0, 8), (4, 12)), plod_level=2))
        trace.append(Query(value_range=(0.5, 1.5), region=((0, 16), (0, 16))))
        path = tmp_path / "trace.json"
        trace.save(path)
        back = QueryTrace.load(path)
        assert len(back) == 3
        assert back.queries[0] == trace.queries[0]
        assert back.queries[1] == trace.queries[1]
        assert back.queries[2] == trace.queries[2]

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "queries": []}')
        with pytest.raises(ValueError, match="trace version"):
            QueryTrace.load(path)

    def test_resolution_level_preserved(self, tmp_path):
        trace = QueryTrace([Query(resolution_level=2)])
        path = tmp_path / "t.json"
        trace.save(path)
        assert QueryTrace.load(path).queries[0].resolution_level == 2


class TestTracingStore:
    def test_records_and_delegates(self, traced_setup):
        fs, data, store = traced_setup
        traced = TracingStore(store)
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.5])
        r1 = traced.query(Query(value_range=(lo, hi), output="positions"))
        r2 = traced.query(Query(region=((0, 32), (0, 32))))
        assert len(traced.trace) == 2
        # Delegation of non-query attributes works.
        assert traced.shape == data.shape
        assert np.array_equal(
            r1.positions, np.flatnonzero((flat >= lo) & (flat <= hi))
        )
        assert r2.n_results == 1024


class TestReplay:
    def test_replay_matches_direct(self, traced_setup):
        fs, data, store = traced_setup
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.2, 0.4])
        trace = QueryTrace(
            [
                Query(value_range=(lo, hi), output="positions"),
                Query(region=((16, 48), (0, 64))),
            ]
        )
        report = replay_trace(store, trace)
        assert isinstance(report, ReplayReport)
        assert len(report.per_query) == 2
        assert report.n_results[0] == int(((flat >= lo) & (flat <= hi)).sum())
        assert report.n_results[1] == 32 * 64
        assert report.total.total > 0
        assert report.mean_seconds > 0

    def test_warm_replay_cheaper(self, traced_setup):
        fs, data, store = traced_setup
        trace = QueryTrace([Query(region=((0, 64), (0, 64)))] * 3)
        cold = replay_trace(store, trace, cold_cache=True)
        warm = replay_trace(store, trace, cold_cache=False)
        assert warm.total.io < cold.total.io

    def test_cross_layout_replay(self, traced_setup, tmp_path):
        """A trace captured against one order replays against another
        with identical answers."""
        fs, data, store = traced_setup
        cfg = mloc_col(
            chunk_shape=(16, 16), n_bins=8, level_order="VSM", target_block_bytes=4096
        )
        MLOCWriter(fs, "/t2", cfg).write(data, variable="f")
        other = MLOCStore.open(fs, "/t2", "f", n_ranks=4)
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.6, 0.8])
        trace = QueryTrace([Query(value_range=(lo, hi), output="positions")])
        a = replay_trace(store, trace)
        b = replay_trace(other, trace)
        assert a.n_results == b.n_results

    def test_empty_trace(self, traced_setup):
        fs, data, store = traced_setup
        report = replay_trace(store, QueryTrace())
        assert report.mean_seconds == 0.0
