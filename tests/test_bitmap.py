"""Tests for bitmaps and WAH compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bitmap import (
    Bitmap,
    groups_to_bitmap,
    wah_decode,
    wah_encode,
    wah_expand_groups,
    wah_from_positions,
)


class TestBitmapBasics:
    def test_from_to_positions(self):
        pos = np.array([0, 7, 8, 63, 64, 99])
        bm = Bitmap.from_positions(pos, 100)
        assert np.array_equal(bm.to_positions(), pos)
        assert bm.count() == 6

    def test_get_membership(self):
        bm = Bitmap.from_positions(np.array([2, 5]), 10)
        assert bm.get(np.array([2, 3, 5, 9])).tolist() == [True, False, True, False]

    def test_positions_out_of_range(self):
        with pytest.raises(ValueError):
            Bitmap.from_positions(np.array([10]), 10)
        bm = Bitmap(10)
        with pytest.raises(ValueError):
            bm.get(np.array([10]))

    def test_ops(self):
        a = Bitmap.from_positions(np.array([1, 3]), 8)
        b = Bitmap.from_positions(np.array([3, 5]), 8)
        assert (a | b).to_positions().tolist() == [1, 3, 5]
        assert (a & b).to_positions().tolist() == [3]
        assert (~a).to_positions().tolist() == [0, 2, 4, 5, 6, 7]

    def test_invert_clears_padding(self):
        bm = Bitmap(5)  # 3 padding bits in the single byte
        assert (~bm).count() == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Bitmap(8) | Bitmap(9)

    def test_equality(self):
        a = Bitmap.from_positions(np.array([1]), 8)
        b = Bitmap.from_positions(np.array([1]), 8)
        assert a == b
        assert a != Bitmap(8)

    def test_empty_bitmap(self):
        bm = Bitmap(0)
        assert bm.count() == 0
        assert bm.to_positions().size == 0

    def test_buffer_size_checked(self):
        with pytest.raises(ValueError, match="bytes"):
            Bitmap(16, np.zeros(1, dtype=np.uint8))

    def test_nbytes(self):
        assert Bitmap(100).nbytes == 13


class TestWAH:
    @pytest.mark.parametrize("nbits", [1, 62, 63, 64, 126, 127, 1000])
    def test_roundtrip_sizes(self, nbits, rng):
        pos = rng.choice(nbits, size=max(1, nbits // 3), replace=False)
        bm = Bitmap.from_positions(pos, nbits)
        assert np.array_equal(wah_decode(wah_encode(bm.buffer, nbits), nbits), bm.buffer)

    def test_empty_and_full(self):
        for nbits in (63, 100):
            empty = Bitmap(nbits)
            full = ~empty
            for bm in (empty, full):
                words = wah_encode(bm.buffer, nbits)
                assert np.array_equal(wah_decode(words, nbits), bm.buffer)

    def test_fills_compress_runs(self):
        # 10^6 zeros compress to a couple of words.
        words = wah_encode(Bitmap(1_000_000).buffer, 1_000_000)
        assert words.size <= 2

    def test_clustered_much_smaller_than_dense(self):
        pos = np.arange(5000, 9000)
        bm = Bitmap.from_positions(pos, 1_000_000)
        words = wah_encode(bm.buffer, 1_000_000)
        assert words.size < 100

    def test_from_positions_equivalent_to_dense_encode(self, rng):
        nbits = 50_000
        pos = rng.choice(nbits, 700, replace=False)
        dense = wah_encode(Bitmap.from_positions(pos, nbits).buffer, nbits)
        sparse = wah_from_positions(pos, nbits)
        assert np.array_equal(
            wah_decode(dense, nbits), wah_decode(sparse, nbits)
        )

    def test_from_positions_empty(self):
        words = wah_from_positions(np.array([], dtype=np.int64), 1000)
        assert np.array_equal(wah_decode(words, 1000), Bitmap(1000).buffer)

    def test_from_positions_out_of_range(self):
        with pytest.raises(ValueError):
            wah_from_positions(np.array([100]), 100)

    def test_decode_length_check(self):
        words = wah_encode(Bitmap(100).buffer, 100)
        with pytest.raises(ValueError, match="expected"):
            wah_decode(words, 200)

    def test_bitmap_wah_serialization(self, rng):
        pos = rng.choice(10_000, 300, replace=False)
        bm = Bitmap.from_positions(pos, 10_000)
        assert Bitmap.from_wah(bm.wah_bytes(), 10_000) == bm


class TestGroupDomain:
    def test_expand_then_pack_roundtrip(self, rng):
        nbits = 20_000
        pos = rng.choice(nbits, 500, replace=False)
        words = wah_from_positions(pos, nbits)
        groups = wah_expand_groups(words)
        bm = groups_to_bitmap(groups, nbits)
        assert np.array_equal(np.sort(pos), bm.to_positions())

    def test_group_domain_or_matches_bitmap_or(self, rng):
        nbits = 8_000
        a_pos = rng.choice(nbits, 200, replace=False)
        b_pos = rng.choice(nbits, 200, replace=False)
        ga = wah_expand_groups(wah_from_positions(a_pos, nbits))
        gb = wah_expand_groups(wah_from_positions(b_pos, nbits))
        merged = groups_to_bitmap(ga | gb, nbits)
        expected = Bitmap.from_positions(a_pos, nbits) | Bitmap.from_positions(
            b_pos, nbits
        )
        assert merged == expected

    def test_group_count_checked(self):
        with pytest.raises(ValueError, match="expected"):
            groups_to_bitmap(np.zeros(3, dtype=np.uint64), 63)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_bitmap_matches_set_semantics(data):
    nbits = data.draw(st.integers(min_value=1, max_value=400))
    a_pos = data.draw(st.sets(st.integers(min_value=0, max_value=nbits - 1)))
    b_pos = data.draw(st.sets(st.integers(min_value=0, max_value=nbits - 1)))
    a = Bitmap.from_positions(np.array(sorted(a_pos), dtype=np.int64), nbits)
    b = Bitmap.from_positions(np.array(sorted(b_pos), dtype=np.int64), nbits)
    assert set((a | b).to_positions().tolist()) == a_pos | b_pos
    assert set((a & b).to_positions().tolist()) == a_pos & b_pos
    assert set((~a).to_positions().tolist()) == set(range(nbits)) - a_pos
    # WAH roundtrip preserves content.
    assert Bitmap.from_wah(a.wah_bytes(), nbits) == a
