"""Snapshot isolation under interleaved appends and queries.

The tentpole property of the appendable-manifest refactor: a reader
pinned at generation ``G`` sees exactly the members sealed at ``G``,
and every query it runs is **bit-identical** to the same query on a
fresh ``MLOCDataset`` open pinned at ``G`` — no matter how many
appends (or refreshes by other readers) happen in between.

Hypothesis drives randomized interleavings: appends land in random
timestep order, queries arrive at random points with random region
constraints, and the reader refreshes its snapshot at random points.
Each query runs through a randomly chosen execution surface — flat
store, ``ShardedMLOCStore``, or a ``RefinementSession`` refined to
full precision — all of which must give the same pinned answer.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MLOCDataset, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS

GRID = (32, 32)
MAX_TIMESTEPS = 4


def _config():
    return mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)


@st.composite
def interleavings(draw):
    """A schedule of append / refresh / query operations."""
    n_timesteps = draw(st.integers(min_value=2, max_value=MAX_TIMESTEPS))
    appends = [("append", t) for t in draw(st.permutations(range(n_timesteps)))]
    n_queries = draw(st.integers(min_value=1, max_value=4))
    ops = list(appends)
    for _ in range(n_queries):
        lo0 = draw(st.integers(min_value=0, max_value=GRID[0] - 9))
        lo1 = draw(st.integers(min_value=0, max_value=GRID[1] - 9))
        size = draw(st.integers(min_value=8, max_value=16))
        mode = draw(st.sampled_from(["flat", "sharded", "session"]))
        region = (
            (lo0, min(lo0 + size, GRID[0])),
            (lo1, min(lo1 + size, GRID[1])),
        )
        pos = draw(st.integers(min_value=0, max_value=len(ops)))
        ops.insert(pos, ("query", (region, mode)))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        pos = draw(st.integers(min_value=0, max_value=len(ops)))
        ops.insert(pos, ("refresh", None))
    return ops


def _run_query(snap, timestep, region, mode):
    """One query through the drawn execution surface."""
    query = Query(region=region, output="values")
    if mode == "sharded":
        store = snap.sharded_store("temp", timestep, n_shards=2)
    else:
        store = snap.store("temp", timestep)
    if mode == "session":
        with store.open_session(
            Query(region=region, output="values", plod_level=3)
        ) as session:
            session.refine(7)
            return session.result
    return store.query(query)


@settings(max_examples=15, deadline=None)
@given(ops=interleavings())
def test_queries_bit_identical_to_fresh_pinned_open(ops):
    fs = SimulatedPFS()
    writer_handle = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    reader_handle = MLOCDataset(fs, "/ds", _config(), n_ranks=4, cache_bytes=1 << 20)
    snap = reader_handle.snapshot()
    served = []  # (generation, timestep, region, mode, result)

    for op, arg in ops:
        if op == "append":
            writer_handle.append(gts_like(GRID, seed=arg), "temp", arg)
        elif op == "refresh":
            snap = snap.refresh()
        else:
            region, mode = arg
            sealed = snap.timesteps("temp")
            if not sealed:
                # nothing sealed in the pinned generation yet: the
                # member must be invisible even if already on disk
                assert not snap.has("temp", 0)
                continue
            timestep = sealed[len(served) % len(sealed)]
            result = _run_query(snap, timestep, region, mode)
            served.append((snap.generation, timestep, region, mode, result))

    # Pinned-view invariant: the snapshot never saw unsealed members.
    for generation, timestep, region, mode, result in served:
        fresh = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
        expected = _run_query(
            fresh.snapshot(generation=generation), timestep, region, mode
        )
        assert np.array_equal(result.positions, expected.positions)
        assert np.array_equal(result.values, expected.values)


@settings(max_examples=10, deadline=None)
@given(
    order=st.permutations(range(3)),
    refresh_before_last=st.booleans(),
)
def test_old_snapshot_frozen_while_appends_land(order, refresh_before_last):
    """A snapshot taken at generation 1 answers identically before and
    after every later append, across all three execution surfaces."""
    fs = SimulatedPFS()
    ds = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    first = order[0]
    ds.append(gts_like(GRID, seed=first), "temp", first)
    snap = ds.snapshot()
    region = ((4, 20), (4, 20))
    before = {
        mode: _run_query(snap, first, region, mode)
        for mode in ("flat", "sharded", "session")
    }
    for t in order[1:]:
        if refresh_before_last:
            ds.snapshot()  # other readers advancing changes nothing
        ds.append(gts_like(GRID, seed=t), "temp", t)
    assert snap.timesteps("temp") == [first]
    for mode, expected in before.items():
        again = _run_query(snap, first, region, mode)
        assert np.array_equal(again.positions, expected.positions)
        assert np.array_equal(again.values, expected.values)
