"""Multi-tenant query broker: identity, fairness, admission, dedup.

The two tentpole guarantees of ``repro.server``:

* **bit-identity** — a result served through the broker (shared
  fetcher, deferred execution, sharded or flat store) is identical to
  the same query run directly on a fresh store handle;
* **the §8 invariant** — the broker never decodes a block twice while
  any waiter exists, proven here with *no* persistent cache configured
  (so retained fetcher jobs are the only possible source of reuse).

Async tests drive the :class:`QueryBroker` façade through
``asyncio.run`` (the suite has no asyncio plugin on purpose — the
broker must stay testable with a stock pytest).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, ShardedMLOCStore, mloc_col
from repro.core.result import SUMMED_STAT_KEYS, aggregate_stats
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.pfs.faults import FaultPlan, FaultyPFS
from repro.server import (
    BrokerConfig,
    BrokerCore,
    BrokerRejected,
    QueryBroker,
    QuotaExceededError,
    TenantQuota,
    open_loop_events,
    replay_closed_loop,
    replay_open_loop,
)


@pytest.fixture(scope="module")
def broker_fs():
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(32, 32), n_bins=16, target_block_bytes=8 * 1024)
    MLOCWriter(fs, "/s", config).write(gts_like((256, 256), seed=7), variable="f")
    return fs


def _open(fs, **options):
    return MLOCStore.open(fs, "/s", "f", n_ranks=4, **options)


QUERIES = [
    Query(region=((0, 64), (0, 64)), output="values"),
    Query(region=((32, 96), (32, 96)), output="values"),
    Query(region=((16, 80), (16, 80)), output="values", plod_level=3),
    Query(value_range=(4.0, 5.0), output="positions"),
    Query(value_range=(3.5, 4.5), region=((64, 192), (64, 192)), output="values"),
]


def _assert_identical(result, expected):
    assert np.array_equal(result.positions, expected.positions)
    if expected.values is None:
        assert result.values is None
    else:
        assert np.array_equal(result.values, expected.values)


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_broker_results_match_direct_queries(self, broker_fs):
        direct = [_open(broker_fs).query(q) for q in QUERIES]
        core = BrokerCore(
            _open(broker_fs, cache_bytes=4 << 20),
            BrokerConfig(max_inflight=2),
        )
        reqs = [
            core.submit(f"tenant-{i % 3}", q) for i, q in enumerate(QUERIES)
        ]
        core.drain()
        for req, expected in zip(reqs, direct):
            assert req.status == "done"
            _assert_identical(req.result, expected)

    def test_sharded_store_scatter_gather_identical(self, broker_fs):
        direct = [_open(broker_fs).query(q) for q in QUERIES]
        sharded = ShardedMLOCStore.open(
            broker_fs, "/s", "f", n_shards=3, n_ranks=2, cache_bytes=4 << 20
        )
        core = BrokerCore(sharded, BrokerConfig(max_inflight=2))
        reqs = [
            core.submit(f"tenant-{i % 2}", q) for i, q in enumerate(QUERIES)
        ]
        core.drain()
        for req, expected in zip(reqs, direct):
            assert req.status == "done"
            _assert_identical(req.result, expected)


# ----------------------------------------------------------------------
# The §8 invariant: no re-decode while a waiter exists
# ----------------------------------------------------------------------
class TestFetchMergeDedup:
    def test_never_decodes_twice_while_waiters_exist(self, broker_fs):
        # No persistent cache: cross-round reuse can only come from the
        # fetch-merge loop retaining decoded jobs for queued waiters.
        core = BrokerCore(_open(broker_fs), BrokerConfig(max_inflight=1))
        q = QUERIES[0]
        first = core.submit("a", q)
        second = core.submit("b", q)
        core.run_round()  # serves only tenant a; b still waits
        assert first.status == "done" and second.status == "queued"
        assert core.loop.retained_jobs() > 0
        core.run_round()
        assert second.status == "done"
        assert second.result.stats["blocks_decoded"] == 0
        assert second.result.stats["dedup_blocks"] > 0
        _assert_identical(second.result, first.result)
        # Queue drained: the retained jobs were released at round end.
        assert core.loop.retained_jobs() == 0
        assert core.loop.released_jobs > 0

    def test_overlapping_tenants_coalesce_within_a_round(self, broker_fs):
        core = BrokerCore(_open(broker_fs), BrokerConfig(max_inflight=4))
        overlapping = [
            Query(region=((0, 96), (0, 96)), output="values"),
            Query(region=((32, 128), (32, 128)), output="values"),
            Query(region=((0, 64), (32, 128)), output="values"),
        ]
        for i, q in enumerate(overlapping):
            core.submit(f"t{i}", q)
        core.drain()
        totals = core.stats()["totals"]
        assert totals["dedup_blocks"] > 0
        assert totals["dedup_raw_bytes"] > 0
        # Dedup hits are exactly the gap between block requests and
        # actual decodes (no LRU configured to blur the accounting).
        assert totals["cache_hits"] == totals["dedup_blocks"]

    def test_quarantined_blocks_degrade_identically_for_all_tenants(
        self, broker_fs
    ):
        # Sticky rot on data subfiles; allow_partial degrades instead
        # of failing.  Both tenants ask for everything in different
        # rounds: the second answer must come from the quarantine
        # registry (no fresh retries) and match the first bit-for-bit.
        ffs = FaultyPFS(
            broker_fs,
            FaultPlan(seed=1, sticky_corruption_rate=0.4, fault_suffixes=(".data",)),
        )
        store = _open(ffs, max_read_retries=1, allow_partial=True)
        core = BrokerCore(store, BrokerConfig(max_inflight=1))
        q = Query(output="values")
        first = core.submit("a", q)
        second = core.submit("b", q)
        core.drain()
        assert first.result.stats["quarantined_blocks"] > 0
        _assert_identical(second.result, first.result)
        assert second.result.stats["io_retries"] == 0
        assert (
            second.result.stats["degraded_points"]
            == first.result.stats["degraded_points"]
        )


# ----------------------------------------------------------------------
# Admission control and quotas
# ----------------------------------------------------------------------
class TestAdmission:
    def test_per_tenant_queue_depth(self, broker_fs):
        core = BrokerCore(
            _open(broker_fs), BrokerConfig(max_queued_per_tenant=1)
        )
        core.submit("a", QUERIES[0])
        with pytest.raises(BrokerRejected):
            core.submit("a", QUERIES[1])
        core.submit("b", QUERIES[1])  # other tenants are unaffected
        stats = core.stats()
        assert stats["tenants"]["a"]["rejected"] == 1
        assert stats["tenants"]["a"]["quota_rejections"] == 0
        assert stats["totals"]["admitted"] == 2
        core.drain()

    def test_pending_bytes_ceiling(self, broker_fs):
        store = _open(broker_fs)
        plan, _ = store.plan(QUERIES[0])
        est = store.estimated_raw_bytes(QUERIES[0], plan)
        assert est > 0
        core = BrokerCore(store, BrokerConfig(max_pending_bytes=est))
        core.submit("a", QUERIES[0])
        assert core.pending_bytes() == est
        with pytest.raises(BrokerRejected):
            core.submit("b", QUERIES[0])
        core.drain()
        assert core.pending_bytes() == 0
        core.submit("b", QUERIES[0])  # capacity freed by completion
        core.drain()

    def test_byte_quota_exhaustion_under_allow_partial(self, broker_fs):
        store = _open(broker_fs, allow_partial=True)
        plan, _ = store.plan(QUERIES[0])
        est = store.estimated_raw_bytes(QUERIES[0], plan)
        core = BrokerCore(
            store, tenants={"a": TenantQuota(max_bytes=int(est * 1.5))}
        )
        req = core.submit("a", QUERIES[0])
        core.drain()
        assert req.status == "done"
        charged = core.stats()["tenants"]["a"]["charged_bytes"]
        assert charged > 0
        with pytest.raises(QuotaExceededError):
            core.submit("a", QUERIES[0])
        stats = core.stats()["tenants"]["a"]
        assert stats["quota_rejections"] == 1
        assert stats["rejected"] == 1
        # Another tenant still gets service.
        other = core.submit("b", QUERIES[0])
        core.drain()
        assert other.status == "done"

    def test_cache_quota_evicts_own_insertions_only(self, broker_fs):
        store = _open(broker_fs, cache_bytes=32 << 20)
        core = BrokerCore(
            store, tenants={"hog": TenantQuota(max_cache_bytes=4096)}
        )
        core.submit("hog", QUERIES[4])
        core.submit("polite", QUERIES[0])
        core.drain()
        stats = core.stats()
        assert stats["tenants"]["hog"]["quota_evictions"] > 0
        assert stats["tenants"]["polite"]["quota_evictions"] == 0
        # Quota pressure changes residency, never answers: a repeat
        # matches a direct query bit for bit.
        repeat = core.submit("polite", QUERIES[0])
        core.drain()
        _assert_identical(repeat.result, _open(broker_fs).query(QUERIES[0]))


# ----------------------------------------------------------------------
# Fair scheduling
# ----------------------------------------------------------------------
class TestFairScheduling:
    def test_drr_interleaves_cheap_tenant_with_expensive_one(self, broker_fs):
        store = _open(broker_fs)
        cheap = Query(region=((0, 32), (0, 32)), output="values")
        expensive = Query(output="values")  # whole domain
        plan, _ = store.plan(cheap)
        cheap_cost = store.estimated_raw_bytes(cheap, plan)
        core = BrokerCore(
            store,
            BrokerConfig(max_inflight=8, quantum_bytes=2 * cheap_cost),
        )
        big_reqs = [core.submit("big", expensive) for _ in range(3)]
        small_reqs = [core.submit("small", cheap) for _ in range(3)]
        order: list[str] = []
        while core.pending():
            for req in core.select_round():
                core.execute(req)
                order.append(req.tenant)
            core.finish_round()
        assert all(r.status == "done" for r in big_reqs + small_reqs)
        # The small tenant drains while the big tenant's deficit is
        # still accruing: every cheap query is served before the last
        # expensive one, not FIFO behind the big tenant's backlog.
        assert order.index("small") < len(order) - 1 - order[::-1].index("big")
        assert order.count("small") == 3

    def test_deficit_accrues_until_expensive_head_runs(self, broker_fs):
        store = _open(broker_fs)
        expensive = Query(output="values")
        plan, _ = store.plan(expensive)
        cost = store.estimated_raw_bytes(expensive, plan)
        # Quantum far below the request cost: several rounds of credit
        # are needed before the head is dequeued, but it must run.
        core = BrokerCore(store, BrokerConfig(quantum_bytes=max(cost // 4, 1)))
        req = core.submit("a", expensive)
        rounds = core.drain()
        assert req.status == "done"
        assert rounds >= 4

    def test_empty_queue_drain_is_a_noop(self, broker_fs):
        core = BrokerCore(_open(broker_fs))
        assert core.pending() == 0
        assert core.select_round() == []
        assert core.drain() == 0
        stats = core.stats()
        assert stats["n_tenants"] == 0
        assert stats["totals"]["admitted"] == 0
        assert stats["rounds"] == 0


# ----------------------------------------------------------------------
# Stats registry integration
# ----------------------------------------------------------------------
class TestBrokerStats:
    def test_totals_fold_through_canonical_registry(self, broker_fs):
        core = BrokerCore(_open(broker_fs, cache_bytes=4 << 20))
        for i, q in enumerate(QUERIES):
            core.submit(f"t{i % 2}", q)
        core.drain()
        stats = core.stats()
        recomputed = aggregate_stats(list(stats["tenants"].values()))
        for key in SUMMED_STAT_KEYS:
            assert stats["totals"][key] == recomputed[key], key
        assert stats["totals"]["admitted"] == len(QUERIES)
        assert stats["totals"]["completed"] == len(QUERIES)
        assert stats["totals"]["n_results"] == sum(
            t["n_results"] for t in stats["tenants"].values()
        )
        assert 0.0 <= stats["dedup_rate"] <= 1.0


# ----------------------------------------------------------------------
# Async façade
# ----------------------------------------------------------------------
class TestQueryBroker:
    def test_concurrent_tenants_get_identical_results(self, broker_fs):
        direct = [_open(broker_fs).query(q) for q in QUERIES[:3]]

        async def main():
            store = _open(broker_fs, cache_bytes=4 << 20)
            async with QueryBroker(store) as broker:
                results = await asyncio.gather(
                    *(
                        broker.query(f"t{i}", q)
                        for i, q in enumerate(QUERIES[:3])
                    )
                )
            return results, broker.stats()

        results, stats = asyncio.run(main())
        for result, expected in zip(results, direct):
            _assert_identical(result, expected)
        assert stats["totals"]["completed"] == 3

    def test_cancellation_mid_fetch_skips_without_serving(self, broker_fs):
        async def main():
            store = _open(broker_fs)
            # One query per round, so the later submissions are still
            # queued (mid-fetch from the tenant's view) when cancelled.
            async with QueryBroker(
                store, BrokerConfig(max_inflight=1)
            ) as broker:
                keep = broker.submit("a", QUERIES[0])
                doomed = broker.submit("b", QUERIES[1])
                also_kept = broker.submit("c", QUERIES[2])
                doomed.cancel()
                first, third = await asyncio.gather(keep, also_kept)
                with pytest.raises(asyncio.CancelledError):
                    await doomed
            return first, third, broker.stats()

        first, third, stats = asyncio.run(main())
        _assert_identical(first, _open(broker_fs).query(QUERIES[0]))
        _assert_identical(third, _open(broker_fs).query(QUERIES[2]))
        assert stats["totals"]["cancelled"] == 1
        assert stats["totals"]["completed"] == 2
        assert stats["tenants"]["b"]["completed"] == 0

    def test_zero_tenant_start_and_close(self, broker_fs):
        async def main():
            async with QueryBroker(_open(broker_fs)) as broker:
                await asyncio.sleep(0)
            return broker.stats()

        stats = asyncio.run(main())
        assert stats["totals"]["admitted"] == 0
        assert stats["pending"] == 0

    def test_submit_after_close_raises(self, broker_fs):
        async def main():
            broker = QueryBroker(_open(broker_fs))
            await broker.start()
            await broker.close()
            with pytest.raises(RuntimeError):
                broker.submit("a", QUERIES[0])

        asyncio.run(main())


# ----------------------------------------------------------------------
# Traffic replay
# ----------------------------------------------------------------------
class TestReplay:
    def _tenant_queries(self, n_tenants=4):
        return {
            f"t{t}": [QUERIES[(t + i) % len(QUERIES)] for i in range(3)]
            for t in range(n_tenants)
        }

    def test_open_loop_replay_is_deterministic(self, broker_fs):
        # Component times include *measured* CPU seconds (DESIGN.md §5),
        # so exact latencies carry timer noise; everything the broker
        # decides — admission, service order, blocks touched — and every
        # simulated counter must replay identically.
        def run():
            broker_fs.clear_cache()  # same simulated OS-cache start state
            core = BrokerCore(_open(broker_fs, cache_bytes=4 << 20))
            events = open_loop_events(self._tenant_queries(), rate=50.0, seed=3)
            return replay_open_loop(core, events)

        a, b = run(), run()
        assert [(t, arr) for t, arr, _ in a.samples] == [
            (t, arr) for t, arr, _ in b.samples
        ]
        for key in ("dedup_blocks", "blocks_decoded", "cache_hits", "bytes_read"):
            assert a.broker["totals"][key] == b.broker["totals"][key], key
        assert a.broker["rounds"] == b.broker["rounds"]
        assert a.as_dict()["n_requests"] == 12
        assert a.percentile(99) >= a.percentile(50) > 0.0

    def test_open_loop_latency_includes_queueing(self, broker_fs):
        # Everything arrives at t=0 but only one query serves per
        # round: later completions carry the backlog's service time.
        core = BrokerCore(_open(broker_fs), BrokerConfig(max_inflight=1))
        events = open_loop_events(self._tenant_queries(2), rate=1e9, seed=0)
        report = replay_open_loop(core, events)
        lat = report.latencies()
        assert lat.size == 6
        assert lat.max() > lat.min()

    def test_closed_loop_completes_every_stream(self, broker_fs):
        core = BrokerCore(_open(broker_fs, cache_bytes=4 << 20))
        report = replay_closed_loop(
            core, self._tenant_queries(), think_time=0.002
        )
        assert report.as_dict()["n_requests"] == 12
        assert report.broker["totals"]["completed"] == 12
        assert report.broker["pending"] == 0
        # The simulated clock only moves forward; no request can take
        # longer than the whole replay.
        assert report.clock >= report.latencies().max() > 0.0
