"""Tests for the MLOC writer: layout invariants and storage accounting."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, mloc_col, mloc_isa, mloc_iso
from repro.core.config import MLOCConfig
from repro.datasets import gts_like
from repro.pfs import BinFileSet, SimulatedPFS


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return gts_like((128, 128), seed=4)


def write(data, config, fs=None):
    fs = fs if fs is not None else SimulatedPFS()
    report = MLOCWriter(fs, "/w", config).write(data, variable="f")
    return fs, report


class TestWriteReport:
    def test_accounting_matches_fs(self, data):
        fs, report = write(data, mloc_col((16, 16), n_bins=8, target_block_bytes=4096))
        files = BinFileSet("/w/f", 8)
        assert report.data_bytes == files.data_bytes(fs)
        assert report.index_bytes == files.index_bytes(fs)
        assert report.meta_bytes == fs.size(files.meta_path)
        assert report.raw_bytes == data.nbytes
        assert report.total_bytes == (
            report.data_bytes + report.index_bytes + report.meta_bytes
        )
        assert 0 < report.data_ratio < 1.2
        assert report.total_ratio < 1.5

    def test_compression_orders_match_table1(self, data):
        """Table I shape: ISA much smaller than COL/ISO; all MLOC
        variants smaller than raw + index bounded."""
        ratios = {}
        for maker, name in [(mloc_col, "col"), (mloc_iso, "iso"), (mloc_isa, "isa")]:
            _, report = write(data, maker((16, 16), n_bins=8, target_block_bytes=4096))
            ratios[name] = report.data_ratio
        assert ratios["isa"] < 0.5 * min(ratios["col"], ratios["iso"])
        assert ratios["col"] < 1.0 and ratios["iso"] < 1.0


class TestLayoutInvariants:
    def test_one_file_pair_per_bin(self, data):
        fs, _ = write(data, mloc_col((16, 16), n_bins=8, target_block_bytes=4096))
        names = fs.list_files("/w/f/")
        assert len([n for n in names if n.endswith(".data")]) == 8
        assert len([n for n in names if n.endswith(".index")]) == 8
        assert "/w/f/meta" in names

    def test_counts_cover_everything(self, data):
        fs, _ = write(data, mloc_col((16, 16), n_bins=8, target_block_bytes=4096))
        store = MLOCStore.open(fs, "/w", "f")
        assert int(store.meta.counts.sum()) == data.size
        assert store.meta.counts.shape == (8, 64)

    def test_block_tables_partition_cells(self, data):
        fs, _ = write(data, mloc_col((16, 16), n_bins=4, target_block_bytes=4096))
        store = MLOCStore.open(fs, "/w", "f")
        n_cells = 7 * store.meta.n_chunks  # 7 byte groups (V-M-S)
        for b in range(4):
            table = store.meta.data_blocks[b]
            assert table[0, 0] == 0
            assert table[-1, 1] == n_cells
            # contiguous, non-overlapping cell ranges
            assert np.array_equal(table[1:, 0], table[:-1, 1])
            # offsets consistent with payload lengths
            assert np.array_equal(table[1:, 2], (table[:-1, 2] + table[:-1, 3]))
            assert table[-1, 2] + table[-1, 3] == store.fs.size(
                store.files.data_path(b)
            )

    def test_index_tables_partition_chunks(self, data):
        fs, _ = write(data, mloc_iso((16, 16), n_bins=4, target_block_bytes=4096))
        store = MLOCStore.open(fs, "/w", "f")
        for b in range(4):
            table = store.meta.index_blocks[b]
            assert table[0, 0] == 0
            assert table[-1, 1] == store.meta.n_chunks
            assert np.array_equal(table[1:, 0], table[:-1, 1])

    def test_block_sizes_near_target(self, data):
        target = 4096
        fs, _ = write(data, mloc_iso((16, 16), n_bins=4, target_block_bytes=target))
        store = MLOCStore.open(fs, "/w", "f")
        raw_lens = np.concatenate([t[:, 4] for t in store.meta.data_blocks])
        # All blocks but the last of each stream end at/above the target,
        # and none is wildly above it (one cell of slack).
        assert raw_lens.max() < 4 * target

    def test_smaller_blocks_more_rows(self, data):
        fs_a, _ = write(data, mloc_iso((16, 16), n_bins=4, target_block_bytes=2048))
        fs_b, _ = write(data, mloc_iso((16, 16), n_bins=4, target_block_bytes=16384))
        a = MLOCStore.open(fs_a, "/w", "f")
        b = MLOCStore.open(fs_b, "/w", "f")
        rows_a = sum(t.shape[0] for t in a.meta.data_blocks)
        rows_b = sum(t.shape[0] for t in b.meta.data_blocks)
        assert rows_a > rows_b


class TestCodecTypeChecking:
    def test_plod_requires_byte_codec(self, data):
        cfg = MLOCConfig(chunk_shape=(16, 16), level_order="VMS", codec="isobar")
        with pytest.raises(TypeError, match="ByteCodec"):
            write(data, cfg)

    def test_vs_requires_float_codec(self, data):
        cfg = MLOCConfig(chunk_shape=(16, 16), level_order="VS", codec="zlib-bytes")
        with pytest.raises(TypeError, match="FloatCodec"):
            write(data, cfg)


class TestCurveVariants:
    @pytest.mark.parametrize("curve", ["hilbert", "zorder", "rowmajor", "hierarchical"])
    def test_all_curves_roundtrip(self, data, curve):
        cfg = mloc_col((16, 16), n_bins=4, curve=curve, target_block_bytes=4096)
        fs, _ = write(data, cfg)
        store = MLOCStore.open(fs, "/w", "f")
        from repro.core import Query

        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.4])
        r = store.query(Query(value_range=(lo, hi), output="positions"))
        expect = np.flatnonzero((flat >= lo) & (flat <= hi))
        assert np.array_equal(r.positions, expect)


class TestDeterminism:
    def test_same_seed_same_bytes(self, data):
        cfg = mloc_col((16, 16), n_bins=4, target_block_bytes=4096)
        fs1, r1 = write(data, cfg)
        fs2, r2 = write(data, cfg)
        assert r1.data_bytes == r2.data_bytes
        assert r1.index_bytes == r2.index_bytes
        p = "/w/f/bin0000.data"
        assert fs1.session().open(p).read_all() == fs2.session().open(p).read_all()
