"""Chaos matrix: seeded fault plans against every layout and backend.

The suite's headline invariants, exercised across codecs (zlib byte
columns, ISOBAR, ISABELA), level orders (VMS, VSM, VS), and decode
backends (serial, threads, processes):

* a faults-disabled :class:`FaultyPFS` is bit-identical to the plain
  :class:`SimulatedPFS` — same results, same simulated io /
  decompression / communication seconds;
* under *any* seeded fault plan, every injected fault surfaces — as a
  retry/stall/CRC counter, a degradation record, or a
  :class:`DegradedResultError` — and any divergence from the clean
  answer is accompanied by an explicit degradation or quarantine
  record (no silently wrong values, ever);
* offline ``fsck`` and the executor's quarantine registry agree on
  which blocks persistent rot destroyed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DegradedResultError, MLOCStore, Query
from repro.pfs.faults import FaultPlan, FaultyPFS
from repro.tools import check_store

pytestmark = pytest.mark.chaos

STORE_KINDS = ("col", "vsm", "iso", "isa")


def _open(fs, **options):
    if options.get("backend") == "processes":
        # Force a real pool even on single-core CI boxes; width <= 1
        # would silently fall back inline and test nothing new.
        options.setdefault("workers", 2)
    return MLOCStore.open(fs, "/store", "field", n_ranks=4, **options)


def _queries_for(store):
    """A VC, an SC, and (on PLoD layouts) a multiresolution query."""
    edges = store.meta.edges
    shape = store.shape
    box = tuple((d // 4, 3 * d // 4) for d in shape)
    queries = [
        Query(value_range=(float(edges[2]), float(edges[9])), output="positions"),
        Query(value_range=(float(edges[5]), float(edges[12])), output="values"),
        Query(region=box, output="values"),
    ]
    if store.meta.config.plod_enabled:
        queries.append(Query(region=box, output="values", plod_level=3))
        queries.append(
            Query(
                value_range=(float(edges[1]), float(edges[7])),
                output="values",
                plod_level=5,
            )
        )
    return queries


def _same_answer(a, b) -> bool:
    if not np.array_equal(a.positions, b.positions):
        return False
    if (a.values is None) != (b.values is None):
        return False
    return a.values is None or np.array_equal(a.values, b.values)


def _fault_evidence(result) -> bool:
    s = result.stats
    return bool(
        s["crc_failures"]
        or s["io_retries"]
        or s["degraded_points"]
        or s["dropped_points"]
        or s["quarantined_blocks"]
        or s["partial_chunks"]
        or s["stall_seconds"] > 0
    )


def _degradation_record(result) -> bool:
    s = result.stats
    return bool(
        s["degraded_points"]
        or s["dropped_points"]
        or s["quarantined_blocks"]
        or s["partial_chunks"]
    )


# ----------------------------------------------------------------------
# Zero-fault equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
@pytest.mark.parametrize("kind", STORE_KINDS)
def test_zero_fault_plans_are_bit_identical(kind, backend, request):
    fs, reference = request.getfixturevalue(f"{kind}_store")
    ffs = FaultyPFS(fs)  # default plan: injects nothing
    store = _open(ffs, backend=backend)
    for query in _queries_for(reference):
        fs.clear_cache()
        expected = reference.query(query)
        fs.clear_cache()
        result = store.query(query)
        assert _same_answer(result, expected), query
        # Simulated components must match exactly; reconstruction is
        # *measured* CPU time and legitimately varies run to run.
        assert result.times.io == pytest.approx(expected.times.io)
        assert result.times.decompression == pytest.approx(
            expected.times.decompression
        )
        assert result.times.communication == pytest.approx(
            expected.times.communication
        )
        assert not _fault_evidence(result)
    assert ffs.injected.total_faults == 0


# ----------------------------------------------------------------------
# Randomized fault plans: everything surfaces, nothing lies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", STORE_KINDS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_every_fault_surfaces_or_raises(kind, data, request, chaos_seed):
    fs, reference = request.getfixturevalue(f"{kind}_store")
    seed = chaos_seed + data.draw(st.integers(0, 9999), label="plan seed")
    plan = FaultPlan(
        seed=seed,
        transient_error_rate=data.draw(
            st.sampled_from([0.0, 0.05, 0.3]), label="transient"
        ),
        bitflip_rate=data.draw(st.sampled_from([0.0, 0.05, 0.3]), label="flip"),
        torn_read_rate=data.draw(st.sampled_from([0.0, 0.1]), label="torn"),
        sticky_corruption_rate=data.draw(
            st.sampled_from([0.0, 0.05, 0.2]), label="sticky"
        ),
        latency_spike_rate=data.draw(st.sampled_from([0.0, 0.2]), label="latency"),
    )
    query = data.draw(st.sampled_from(_queries_for(reference)), label="query")
    backend = data.draw(st.sampled_from(["serial", "threads", "processes"]), label="backend")

    fs.clear_cache()
    expected = reference.query(query)

    ffs = FaultyPFS(fs, plan)
    store = _open(ffs, backend=backend, allow_partial=True, max_read_retries=2)
    fs.clear_cache()
    result = store.query(query)

    if ffs.injected.total_faults == 0:
        assert _same_answer(result, expected)
        assert not _fault_evidence(result)
    else:
        # Whatever happened left a trace in the counters...
        assert _fault_evidence(result)
        # ...and a different answer is never silent: it always comes
        # with an explicit degradation or quarantine record.
        if not _same_answer(result, expected):
            assert _degradation_record(result)


@pytest.mark.parametrize("kind", ("col", "iso"))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_strict_mode_never_drops_points(kind, data, request, chaos_seed):
    """Without ``allow_partial``, a query either raises or answers with
    zero dropped points and no partial chunks (refinement-plane loss may
    still degrade precision, which the counters disclose)."""
    fs, reference = request.getfixturevalue(f"{kind}_store")
    plan = FaultPlan(
        seed=chaos_seed + data.draw(st.integers(0, 9999), label="plan seed"),
        transient_error_rate=0.2,
        sticky_corruption_rate=data.draw(
            st.sampled_from([0.05, 0.2]), label="sticky"
        ),
    )
    query = data.draw(st.sampled_from(_queries_for(reference)), label="query")
    ffs = FaultyPFS(fs, plan)
    store = _open(ffs, max_read_retries=1)
    fs.clear_cache()
    try:
        result = store.query(query)
    except DegradedResultError as exc:
        assert exc.kind in ("index", "data", "data-base")
        assert exc.chunk_ids
    else:
        assert result.stats["dropped_points"] == 0
        assert result.stats["partial_chunks"] == []


# ----------------------------------------------------------------------
# Error-bounded retrieval under fire: meet tol, raise, or confess
# ----------------------------------------------------------------------
def _tol_failure_ok(exc: Exception) -> bool:
    """A loud failure a faulted tol query is allowed to produce."""
    if isinstance(exc, DegradedResultError):
        return exc.kind in ("index", "data", "data-base", "tol")
    # The bounds record itself rotted: refusing to plan is honest too.
    return isinstance(exc, ValueError) and "error-bounds" in str(exc)


@pytest.mark.parametrize("kind", ("col", "vsm"))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_tol_query_never_silently_misses_the_bound(
    kind, data, request, chaos_seed, gts_small
):
    """A dummy-filled plane must never count as meeting the bound.

    Under sticky rot a strict-mode ``query(tol=t)`` may raise, but any
    result it *returns* claims ``tol_met`` — and that claim is checked
    here against ground truth, point by point.  In ``allow_partial``
    mode a miss is allowed but must be disclosed: ``tol_met=False``,
    ``achieved_bound > tol``, and a degradation record.
    """
    fs, reference = request.getfixturevalue(f"{kind}_store")
    flat = gts_small.reshape(-1)
    plan = FaultPlan(
        seed=chaos_seed + data.draw(st.integers(0, 9999), label="plan seed"),
        transient_error_rate=0.2,
        sticky_corruption_rate=data.draw(
            st.sampled_from([0.05, 0.2]), label="sticky"
        ),
    )
    tol = data.draw(st.sampled_from([1e-2, 1e-4, 1e-6]), label="tol")
    shape = reference.shape
    box = tuple((d // 4, 3 * d // 4) for d in shape)
    query = Query(region=box, output="values", tol=tol)
    allow_partial = data.draw(st.booleans(), label="allow_partial")

    ffs = FaultyPFS(fs, plan)
    store = _open(ffs, allow_partial=allow_partial, max_read_retries=1)
    fs.clear_cache()
    try:
        result = store.query(query)
    except Exception as exc:  # noqa: BLE001 - the contract is "loud or honest"
        assert _tol_failure_ok(exc), exc
        return
    if result.stats["tol_met"]:
        errs = np.abs(result.values - flat[result.positions])
        denom = np.abs(flat[result.positions])
        rel = np.where(denom > 0, errs / np.where(denom > 0, denom, 1.0), errs)
        assert rel.size == 0 or float(rel.max()) <= tol, (
            "claimed to meet tol but ground-truth error exceeds it"
        )
    else:
        assert not allow_partial or _degradation_record(result)
        assert result.stats["achieved_bound"] > tol


def test_tol_enforcement_raises_on_pinned_plane_loss(col_store):
    """Deterministic regression for the ``kind="tol"`` raise: this
    seed rots only refinement planes the query needs, so strict mode
    must refuse rather than return a provably-out-of-bound answer."""
    fs, _ = col_store
    ffs = FaultyPFS(fs, FaultPlan(seed=8, sticky_corruption_rate=0.04))
    store = _open(ffs, max_read_retries=1)
    fs.clear_cache()
    with pytest.raises(DegradedResultError) as excinfo:
        store.query(Query(region=((64, 192), (64, 192)), output="values", tol=1e-6))
    assert excinfo.value.kind == "tol"
    assert excinfo.value.bin_id == -1  # plane loss may span bins
    assert excinfo.value.chunk_ids


@pytest.mark.parametrize("kind", ("col",))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_tol_refinement_session_converges_or_raises(
    kind, data, request, chaos_seed, gts_small
):
    """Sticky faults during auto-refinement: the progressive ladder
    either ends in a step that provably meets ``tol`` or fails loudly
    on its final (enforcing) step — never a quiet miss."""
    fs, reference = request.getfixturevalue(f"{kind}_store")
    flat = gts_small.reshape(-1)
    plan = FaultPlan(
        seed=chaos_seed + data.draw(st.integers(0, 9999), label="plan seed"),
        transient_error_rate=0.1,
        sticky_corruption_rate=data.draw(
            st.sampled_from([0.05, 0.15]), label="sticky"
        ),
    )
    tol = data.draw(st.sampled_from([1e-3, 1e-5]), label="tol")
    shape = reference.shape
    box = tuple((d // 8, d // 2) for d in shape)
    query = Query(region=box, output="values", tol=tol)

    ffs = FaultyPFS(fs, plan)
    store = _open(ffs, max_read_retries=1)
    fs.clear_cache()
    steps = []
    try:
        with store.open_session(query) as session:
            steps = list(session.progressive_results())
    except Exception as exc:  # noqa: BLE001
        assert _tol_failure_ok(exc), exc
        return
    final = steps[-1]
    assert final.stats["tol_met"] is True
    errs = np.abs(final.values - flat[final.positions])
    denom = np.abs(flat[final.positions])
    rel = np.where(denom > 0, errs / np.where(denom > 0, denom, 1.0), errs)
    assert rel.size == 0 or float(rel.max()) <= tol
    # Non-final steps never overstate: a step that admits missing the
    # bound reports the bound it *did* achieve.
    for step in steps[:-1]:
        assert step.stats["achieved_bound"] >= 0.0


# ----------------------------------------------------------------------
# fsck agrees with the quarantine registry on persistent rot
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", STORE_KINDS)
def test_fsck_agrees_with_quarantine_on_sticky_rot(kind, request, chaos_seed):
    fs, reference = request.getfixturevalue(f"{kind}_store")
    plan = FaultPlan(
        seed=chaos_seed,
        transient_error_rate=0.2,
        bitflip_rate=0.2,
        sticky_corruption_rate=0.25,
    ).sticky_only()
    assert plan.transient_error_rate == 0.0  # only the rot remains
    ffs = FaultyPFS(fs, plan)
    store = _open(ffs, allow_partial=True, max_read_retries=1)
    for query in _queries_for(reference):
        fs.clear_cache()
        store.query(query)
    quarantined = set(store.quarantined_blocks)
    assert quarantined, "0.25 sticky rate should rot some touched blocks"

    issues = check_store(ffs, "/store", "field")
    damaged = {
        (issue.path, issue.offset)
        for issue in issues
        if issue.kind in ("crc-mismatch", "decode-error")
    }
    # Every block the query path quarantined is damage fsck confirms
    # (fsck may see more: it reads blocks no query touched).
    assert quarantined <= damaged
