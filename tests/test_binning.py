"""Tests for bin boundaries, assignment, and aligned-bin classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning.binner import BinScheme, per_bin_segments
from repro.binning.boundaries import equal_frequency_boundaries, equal_width_boundaries


class TestEqualFrequencyBoundaries:
    def test_balances_counts(self, rng):
        sample = rng.normal(0, 1, 100_000)
        edges = equal_frequency_boundaries(sample, 50)
        counts = np.bincount(BinScheme(edges).assign(sample), minlength=50)
        assert counts.max() / counts.min() < 1.1

    def test_edge_count_and_monotonicity(self, rng):
        edges = equal_frequency_boundaries(rng.uniform(0, 1, 1000), 10)
        assert edges.shape == (11,)
        assert np.all(np.diff(edges) > 0)

    def test_duplicated_values_nudged(self):
        sample = np.array([1.0] * 100 + [2.0] * 100)
        edges = equal_frequency_boundaries(sample, 4)
        assert np.all(np.diff(edges) > 0)

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError, match="empty"):
            equal_frequency_boundaries(np.array([]), 4)
        with pytest.raises(ValueError, match="non-finite"):
            equal_frequency_boundaries(np.array([1.0, np.nan]), 2)
        with pytest.raises(ValueError, match="positive"):
            equal_frequency_boundaries(np.array([1.0]), 0)


class TestEqualWidthBoundaries:
    def test_uniform_spacing(self):
        edges = equal_width_boundaries(0.0, 10.0, 5)
        assert np.allclose(np.diff(edges), 2.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            equal_width_boundaries(5.0, 5.0, 3)
        with pytest.raises(ValueError):
            equal_width_boundaries(0.0, np.inf, 3)


class TestBinScheme:
    def test_assignment_semantics(self):
        scheme = BinScheme(np.array([0.0, 1.0, 2.0, 3.0]))
        values = np.array([-5.0, 0.0, 0.999, 1.0, 2.5, 3.0, 99.0])
        # Half-open bins, ends clamped, last bin closed.
        assert scheme.assign(values).tolist() == [0, 0, 0, 1, 2, 2, 2]

    def test_bin_bounds(self):
        scheme = BinScheme(np.array([0.0, 1.0, 2.0]))
        assert scheme.bin_bounds(1) == (1.0, 2.0)
        with pytest.raises(ValueError):
            scheme.bin_bounds(2)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BinScheme(np.array([0.0, 0.0, 1.0]))

    def test_bins_overlapping_interior(self):
        scheme = BinScheme(np.linspace(0, 10, 11))  # bins [0,1) .. [9,10]
        bin_ids, aligned = scheme.bins_overlapping(2.5, 6.5)
        assert bin_ids.tolist() == [2, 3, 4, 5, 6]
        # bins [3,4), [4,5), [5,6) fully inside [2.5, 6.5]
        assert aligned.tolist() == [False, True, True, True, False]

    def test_bins_overlapping_exact_edges(self):
        scheme = BinScheme(np.linspace(0, 10, 11))
        bin_ids, aligned = scheme.bins_overlapping(3.0, 5.0)
        assert bin_ids.tolist() == [3, 4, 5]
        # [3,4) and [4,5) aligned; bin 5 only touched at its left edge.
        assert aligned.tolist() == [True, True, False]

    def test_end_bins_never_aligned_for_finite_constraints(self):
        """First/last bins hold clamped outliers, so a finite constraint
        can never treat them as aligned."""
        scheme = BinScheme(np.linspace(0, 10, 11))
        bin_ids, aligned = scheme.bins_overlapping(-100.0, 100.0)
        assert bin_ids.tolist() == list(range(10))
        assert not aligned[0]
        assert not aligned[-1]
        assert aligned[1:-1].all()

    def test_end_bins_aligned_for_infinite_constraints(self):
        scheme = BinScheme(np.linspace(0, 10, 11))
        _, aligned = scheme.bins_overlapping(-np.inf, np.inf)
        assert aligned.all()

    def test_empty_constraint_rejected(self):
        scheme = BinScheme(np.linspace(0, 1, 3))
        with pytest.raises(ValueError, match="empty"):
            scheme.bins_overlapping(0.7, 0.2)

    def test_constraint_below_range_clamps_to_first_bin(self):
        scheme = BinScheme(np.linspace(0, 10, 11))
        bin_ids, aligned = scheme.bins_overlapping(-5.0, -1.0)
        assert bin_ids.tolist() == [0]
        assert not aligned[0]


class TestPerBinSegments:
    def test_grouping_and_offsets(self):
        values = np.array([5.0, 1.0, 7.0, 3.0, 9.0])
        bin_ids = np.array([1, 0, 1, 0, 2])
        perm, sorted_vals, offsets = per_bin_segments(values, bin_ids, 3)
        assert sorted_vals.tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert offsets.tolist() == [0, 2, 4, 5]
        # Stability: within a bin the original order (ascending index).
        assert perm.tolist() == [1, 3, 0, 2, 4]

    def test_stability_gives_increasing_local_ids(self, rng):
        values = rng.uniform(0, 1, 500)
        scheme = BinScheme(equal_frequency_boundaries(values, 8))
        perm, _, offsets = per_bin_segments(values, scheme.assign(values), 8)
        for b in range(8):
            seg = perm[offsets[b] : offsets[b + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError, match=">= n_bins"):
            per_bin_segments(np.ones(2), np.array([0, 5]), 3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_bin_segments(np.ones(3), np.array([0, 1]), 2)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=20,
        max_size=400,
    ),
    st.integers(min_value=1, max_value=16),
)
def test_assignment_respects_edges_property(values, n_bins):
    sample = np.array(values)
    edges = equal_frequency_boundaries(sample, n_bins)
    scheme = BinScheme(edges)
    ids = scheme.assign(sample)
    assert ids.min() >= 0 and ids.max() < n_bins
    # Values strictly inside a bin's interval get that bin.
    interior = (sample > edges[0]) & (sample < edges[-1])
    for v, b in zip(sample[interior], ids[interior]):
        assert edges[b] <= v < edges[b + 1] or np.isclose(v, edges[b])
