"""Dataset manifests: record framing, the commit protocol, snapshots.

The append path's single source of truth is the generation-numbered
manifest chain (``repro.core.manifest``).  These tests pin the record
format (magic/version/CRC framing like ``hbi``/``peb``), the
commit-protocol invariants (strict +1 bumps, append-only member sets,
torn-leftover overwrite), and the reader-facing semantics built on
top: ``MLOCDataset.append`` / ``DatasetSnapshot`` pinning and the
``fsck`` dataset checks with their distinct ``Issue.kind`` values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Manifest,
    ManifestError,
    ManifestMember,
    MLOCDataset,
    MLOCWriter,
    Query,
    load_manifest,
    load_manifest_at,
    manifest_path,
    mloc_col,
)
from repro.core.manifest import commit_manifest, manifest_generations
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.tools.fsck import check_dataset


def _member(key: str, gen: int, *, timestep: int | None = None) -> ManifestMember:
    return ManifestMember(
        key=key,
        timestep=timestep,
        sealed_generation=gen,
        meta_crc=0xDEADBEEF ^ gen,
        total_bytes=1000 + gen,
    )


def _config():
    return mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)


# ----------------------------------------------------------------------
# Record framing


def test_manifest_round_trip():
    m = Manifest(0)
    m = m.with_member(_member("temp@000000", 1, timestep=0))
    m = m.with_member(_member("temp@000001", 2, timestep=1))
    m = m.with_member(_member("pressure", 3))
    back = Manifest.from_bytes(m.to_bytes())
    assert back == m
    assert back.member("pressure").timestep is None
    assert back.member("temp@000001").variable == "temp"
    assert back.keys() == {"temp@000000", "temp@000001", "pressure"}


def test_empty_manifest_round_trip():
    assert Manifest.from_bytes(Manifest(0).to_bytes()) == Manifest(0)


def test_manifest_rejects_corruption():
    raw = bytearray(
        Manifest(0).with_member(_member("t@000000", 1, timestep=0)).to_bytes()
    )
    raw[len(raw) // 2] ^= 0xFF
    with pytest.raises(ManifestError, match="CRC"):
        Manifest.from_bytes(bytes(raw))


def test_manifest_rejects_bad_magic_truncation_and_trailer():
    good = Manifest(0).with_member(_member("t@000000", 1)).to_bytes()
    with pytest.raises(ManifestError, match="magic"):
        Manifest.from_bytes(b"NOTMLOC!" + good[8:])
    with pytest.raises(ManifestError, match="truncated"):
        Manifest.from_bytes(good[:6])


def test_with_member_enforces_chain():
    m = Manifest(0).with_member(_member("a", 1))
    assert m.generation == 1
    with pytest.raises(ManifestError, match="already sealed"):
        m.with_member(_member("a", 2))
    with pytest.raises(ManifestError, match="next generation"):
        m.with_member(_member("b", 5))


# ----------------------------------------------------------------------
# Commit protocol on the PFS


def test_commit_and_load_chain():
    fs = SimulatedPFS()
    m1 = Manifest(0).with_member(_member("a", 1))
    m2 = m1.with_member(_member("b", 2))
    commit_manifest(fs, "/ds", m1)
    commit_manifest(fs, "/ds", m2)
    assert manifest_generations(fs, "/ds") == [1, 2]
    assert load_manifest(fs, "/ds") == m2
    assert load_manifest_at(fs, "/ds", 1) == m1
    assert load_manifest_at(fs, "/ds", 0) == Manifest(0)
    with pytest.raises(ManifestError, match="no manifest"):
        load_manifest_at(fs, "/ds", 7)


def test_commit_requires_strict_bump():
    fs = SimulatedPFS()
    m1 = Manifest(0).with_member(_member("a", 1))
    commit_manifest(fs, "/ds", m1)
    with pytest.raises(ManifestError, match="refused"):
        commit_manifest(fs, "/ds", m1)  # same generation again
    m3 = Manifest(3, m1.members + (_member("b", 3),))
    with pytest.raises(ManifestError, match="refused"):
        commit_manifest(fs, "/ds", m3)  # skips generation 2


def test_commit_refuses_unsealing():
    fs = SimulatedPFS()
    commit_manifest(fs, "/ds", Manifest(0).with_member(_member("a", 1)))
    with pytest.raises(ManifestError, match="append-only"):
        commit_manifest(fs, "/ds", Manifest(2, (_member("b", 2),)))


def test_torn_manifest_is_skipped_and_retryable():
    fs = SimulatedPFS()
    m1 = Manifest(0).with_member(_member("a", 1))
    commit_manifest(fs, "/ds", m1)
    # A torn generation-2 commit: readers fall back to generation 1.
    m2 = m1.with_member(_member("b", 2))
    fs.write_file(manifest_path("/ds", 2), m2.to_bytes()[:11])
    assert load_manifest(fs, "/ds") == m1
    with pytest.raises(ManifestError):
        load_manifest_at(fs, "/ds", 2)
    # Retrying the commit overwrites the unreadable leftover.
    commit_manifest(fs, "/ds", m2)
    assert load_manifest(fs, "/ds") == m2


def test_filename_generation_mismatch_is_torn():
    fs = SimulatedPFS()
    m1 = Manifest(0).with_member(_member("a", 1))
    fs.write_file(manifest_path("/ds", 3), m1.to_bytes())
    with pytest.raises(ManifestError, match="filename"):
        load_manifest_at(fs, "/ds", 3)
    assert load_manifest(fs, "/ds") == Manifest(0)


# ----------------------------------------------------------------------
# MLOCDataset.append + DatasetSnapshot


@pytest.fixture()
def appended_dataset():
    fs = SimulatedPFS()
    ds = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    for t in range(3):
        ds.append(gts_like((64, 64), seed=t), "temp", t)
    return fs, ds


def test_append_bumps_generation_and_refuses_duplicates(appended_dataset):
    fs, ds = appended_dataset
    assert ds.generation == 3
    assert [m.key for m in ds.manifest.members] == [
        "temp@000000",
        "temp@000001",
        "temp@000002",
    ]
    with pytest.raises(ManifestError, match="already sealed"):
        ds.append(gts_like((64, 64), seed=9), "temp", 1)


def test_snapshot_pins_exactly_one_generation(appended_dataset):
    fs, ds = appended_dataset
    snap1 = ds.snapshot(generation=1)
    assert snap1.timesteps("temp") == [0]
    assert not snap1.has("temp", 2)
    with pytest.raises(KeyError, match="generation 1"):
        snap1.store("temp", 2)

    latest = ds.snapshot()
    assert latest.generation == 3
    assert latest.timesteps("temp") == [0, 1, 2]

    # An old snapshot keeps answering identically after more appends.
    q = Query(region=((0, 32), (0, 32)), output="values")
    before = snap1.store("temp", 0).query(q)
    ds.append(gts_like((64, 64), seed=3), "temp", 3)
    after = snap1.store("temp", 0).query(q)
    assert np.array_equal(before.positions, after.positions)
    assert np.array_equal(before.values, after.values)
    assert not snap1.has("temp", 3)
    assert snap1.refresh().has("temp", 3)


def test_snapshot_query_series_and_sharded_store(appended_dataset):
    fs, ds = appended_dataset
    snap = ds.snapshot()
    q = Query(value_range=(3.0, 5.0), output="positions")
    series = snap.query_series("temp", q)
    assert sorted(series) == [0, 1, 2]
    sharded = snap.sharded_store("temp", 1, n_shards=2)
    flat = snap.store("temp", 1)
    a, b = sharded.query(q), flat.query(q)
    assert np.array_equal(a.positions, b.positions)


def test_runtime_stats_counters(appended_dataset):
    fs, ds = appended_dataset
    snap = ds.snapshot(generation=1)
    snap.refresh()
    stats = ds.runtime_stats()
    assert stats["generation"] == 3
    assert stats["generations_seen"] == 3
    assert stats["snapshot_refreshes"] == 1


def test_append_next_to_plain_write_coexists():
    """write() members stay invisible to snapshots until sealed."""
    fs = SimulatedPFS()
    ds = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    ds.write(gts_like((64, 64), seed=0), "legacy", 0)
    ds.append(gts_like((64, 64), seed=1), "temp", 0)
    snap = ds.snapshot()
    assert snap.variables() == ["temp"]
    # the unmanaged member is still reachable through the catalog
    assert ds.store("legacy", 0).query(
        Query(region=((0, 8), (0, 8)), output="positions")
    ).n_results == 64


# ----------------------------------------------------------------------
# fsck dataset checks


def test_fsck_clean_dataset(appended_dataset):
    fs, ds = appended_dataset
    assert check_dataset(fs, "/ds") == []
    assert check_dataset(fs, "/ds", deep=True) == []


def test_fsck_ignores_nonmanifest_dataset():
    fs = SimulatedPFS()
    MLOCWriter(fs, "/plain", _config()).write(
        gts_like((64, 64), seed=0), variable="f"
    )
    assert check_dataset(fs, "/plain") == []


def test_fsck_flags_torn_newest_manifest(appended_dataset):
    fs, ds = appended_dataset
    raw = load_manifest(fs, "/ds")
    torn = raw.with_member(
        ManifestMember("x@000009", 9, raw.generation + 1, 1, 1)
    )
    fs.write_file(manifest_path("/ds", 4), torn.to_bytes()[:10])
    issues = check_dataset(fs, "/ds")
    assert any(i.kind == "manifest-torn" for i in issues)
    # newest-generation torn commit is recoverable -> warning, not error
    assert all(i.severity == "warning" for i in issues if i.kind == "manifest-torn")


def test_fsck_flags_meta_crc_mismatch(appended_dataset):
    fs, ds = appended_dataset
    meta_path = "/ds/temp@000001/meta"
    raw = bytearray(fs.session().open(meta_path).read_all())
    raw[-1] ^= 0xFF
    fs.write_file(meta_path, bytes(raw))
    issues = check_dataset(fs, "/ds")
    kinds = {i.kind for i in issues}
    assert "crc-mismatch" in kinds or "decode-error" in kinds


def test_fsck_flags_orphaned_member(appended_dataset):
    fs, ds = appended_dataset
    # A sealed-looking member directory no generation references.
    ds.write(gts_like((64, 64), seed=8), "temp", 9)
    issues = check_dataset(fs, "/ds")
    orphans = [i for i in issues if i.kind == "orphaned-member"]
    assert len(orphans) == 1
    assert "temp@000009" in orphans[0].location
    assert orphans[0].severity == "warning"
