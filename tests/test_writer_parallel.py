"""Writer-backend equivalence: parallel output is bit-identical to serial.

The parallel write pipeline (chunk-stage fan-out + compression offload
+ ordered commit) must produce exactly the serial writer's bytes —
every data subfile, every index subfile, and the metadata — for every
level order, codec, curve, and worker count.  This is the write-side
analogue of ``tests/test_backend_equivalence.py`` and the enforcement
of DESIGN.md §6's bit-identical-output rule.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import ExecutionConfig, MLOCStore, MLOCWriter, Query, mloc_col
from repro.core.config import MLOCConfig
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return gts_like((128, 128), seed=21)


def _write_files(data, config, backend, workers=None) -> dict[str, bytes]:
    """All subfile bytes (data, index, meta) of one write."""
    fs = SimulatedPFS()
    writer = MLOCWriter(
        fs, "/eq", config, write_backend=backend, write_workers=workers
    )
    writer.write(data, variable="f")
    session = fs.session()
    return {
        path: bytes(session.open(path).read_all()) for path in fs.list_files("/eq/")
    }


def _assert_identical(serial: dict[str, bytes], parallel: dict[str, bytes]) -> None:
    assert serial.keys() == parallel.keys()
    for path in serial:
        assert parallel[path] == serial[path], f"{path} differs across write backends"


CONFIG_CASES = [
    pytest.param({"level_order": "VMS", "codec": "zlib-bytes"}, id="vms-col"),
    pytest.param({"level_order": "VSM", "codec": "zlib-bytes"}, id="vsm-col"),
    pytest.param({"level_order": "VS", "codec": "isobar"}, id="vs-iso"),
    pytest.param({"level_order": "VS", "codec": "isabela"}, id="vs-isa"),
]


PROC_WORKER_COUNTS = sorted({1, 2, 8, int(os.environ.get("MLOC_PROC_WORKERS", "2"))})


class TestBitIdenticalOutput:
    @pytest.mark.parametrize("kwargs", CONFIG_CASES)
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_level_orders_and_codecs(self, data, kwargs, workers):
        config = MLOCConfig(
            chunk_shape=(16, 16), n_bins=8, target_block_bytes=2048, **kwargs
        )
        serial = _write_files(data, config, "serial")
        threaded = _write_files(data, config, "threads", workers)
        _assert_identical(serial, threaded)

    @pytest.mark.parametrize("kwargs", CONFIG_CASES)
    @pytest.mark.parametrize("workers", PROC_WORKER_COUNTS)
    def test_process_backend_bit_identical(self, data, kwargs, workers):
        """The spawned-pool writer commits exactly the serial bytes —
        every codec encode travels as a picklable spec and resolves in
        table order, so worker count can never reorder a payload."""
        config = MLOCConfig(
            chunk_shape=(16, 16), n_bins=8, target_block_bytes=2048, **kwargs
        )
        serial = _write_files(data, config, "serial")
        processed = _write_files(data, config, "processes", workers)
        _assert_identical(serial, processed)

    def test_auto_backend_bit_identical(self, data):
        config = mloc_col((16, 16), n_bins=8, target_block_bytes=2048)
        serial = _write_files(data, config, "serial")
        auto = _write_files(data, config, "auto", 2)
        _assert_identical(serial, auto)

    @pytest.mark.parametrize(
        "curve", ["hilbert", "zorder", "rowmajor", "hierarchical"]
    )
    def test_curves(self, data, curve):
        config = mloc_col((16, 16), n_bins=8, curve=curve, target_block_bytes=2048)
        serial = _write_files(data, config, "serial")
        threaded = _write_files(data, config, "threads", 4)
        _assert_identical(serial, threaded)

    def test_equal_width_binning(self, data):
        config = mloc_col(
            (16, 16), n_bins=8, binning="equal-width", target_block_bytes=2048
        )
        serial = _write_files(data, config, "serial")
        threaded = _write_files(data, config, "threads", 3)
        _assert_identical(serial, threaded)


class TestThreadedWriterServesQueries:
    def test_roundtrip_query_matches_data(self, data):
        fs = SimulatedPFS()
        config = mloc_col((16, 16), n_bins=8, target_block_bytes=2048)
        MLOCWriter(fs, "/q", config, write_backend="threads", write_workers=4).write(
            data, variable="f"
        )
        store = MLOCStore.open(fs, "/q", "f")
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        result = store.query(Query(value_range=(float(lo), float(hi)), output="values"))
        expect = np.flatnonzero((flat >= lo) & (flat <= hi))
        assert np.array_equal(result.positions, expect)
        assert np.allclose(np.sort(result.values), np.sort(flat[expect]))


class TestWriteOptionValidation:
    def test_unknown_backend_rejected(self, data):
        with pytest.raises(ValueError, match="write_backend"):
            MLOCWriter(SimulatedPFS(), "/x", mloc_col((16, 16)), write_backend="mpi")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="write_workers"):
            MLOCWriter(
                SimulatedPFS(),
                "/x",
                mloc_col((16, 16)),
                write_backend="threads",
                write_workers=0,
            )

    def test_execution_config_carries_writer_options(self):
        exec_cfg = ExecutionConfig(write_backend="threads", write_workers=4)
        assert exec_cfg.writer_options() == {
            "write_backend": "threads",
            "write_workers": 4,
        }
        # Read-side store options must stay free of write knobs.
        assert "write_backend" not in exec_cfg.store_options()
        with pytest.raises(ValueError, match="write_backend"):
            ExecutionConfig(write_backend="fork")
        with pytest.raises(ValueError, match="write_workers"):
            ExecutionConfig(write_workers=-1)


class TestEqualWidthFullRange:
    def test_edges_span_true_extremes(self):
        """Equal-width edges come from the full array, not the sample.

        Plant extremes the boundary sample is unlikely to draw; the
        edges must still span them exactly, so outliers land in real
        bins instead of silently clamping into the end bins.
        """
        rng = np.random.default_rng(5)
        data = rng.normal(0.0, 1.0, size=(64, 64))
        data[0, 0] = -50.0
        data[63, 63] = 75.0
        fs = SimulatedPFS()
        config = mloc_col(
            (16, 16),
            n_bins=8,
            binning="equal-width",
            sample_fraction=0.01,
            target_block_bytes=2048,
        )
        MLOCWriter(fs, "/ew", config).write(data, variable="f")
        store = MLOCStore.open(fs, "/ew", "f")
        assert store.meta.edges[0] == data.min()
        assert store.meta.edges[-1] == data.max()
        # With sample-derived edges both outliers would clamp into the
        # end bins alongside ordinary values; with true-range edges the
        # interior bins actually partition [-50, 75].
        widths = np.diff(store.meta.edges)
        assert np.allclose(widths, widths[0])
