"""Codec picklability audit: the ``processes``-backend contract.

The shared-nothing process backends never ship live codec instances —
work travels as ``(name, params)`` specs and workers rebuild codecs
through the registry.  That only works if every registered codec

* round-trips through pickle (spawn pickles anything that slips into
  a task closure, and derived state like ISABELA's design-matrix lock
  must be dropped and rebuilt, not serialized);
* exposes a ``spec()`` that :func:`~repro.compression.base.from_spec`
  rebuilds into an *equivalent* codec — identical encode bytes and
  identical decode results, constructor params included.

This suite audits every registered codec against both rules, so a new
codec that breaks the contract fails here rather than deep inside a
spawned worker.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.compression import (
    ByteCodec,
    codec_names,
    from_spec,
    make_codec,
)

#: Non-default constructor params per codec, so the audit also proves
#: params survive spec()/pickle round-trips (not just defaults).
PARAMS = {
    "zlib-bytes": {"level": 4},
    "zlib-float": {"level": 4},
    "isobar": {"threshold": 0.8, "level": 4},
    "fpzip-like": {"threshold": 0.9, "level": 4},
    "isabela": {"window": 256, "n_coeffs": 16, "error_rate": 1e-2, "level": 4},
    "null-bytes": {},
    "null-float": {},
}


def _payload_for(codec):
    rng = np.random.default_rng(11)
    if isinstance(codec, ByteCodec):
        return rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
    # ISABELA windows need enough smooth samples; a sine sweep decodes
    # deterministically for every registered float codec.
    return np.sin(np.linspace(0.0, 20.0, 2048)) * 10.0


def _decode_arg(codec, raw):
    return len(raw) if isinstance(codec, ByteCodec) else raw.size


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_audit_covers_every_registered_codec(name):
    assert name in codec_names()


def test_no_unaudited_codecs():
    """A codec registered without a PARAMS entry here is a codec whose
    pickle/spec contract nobody checked — fail loudly."""
    assert sorted(codec_names()) == sorted(PARAMS)


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_pickle_roundtrip_preserves_behavior(name):
    codec = make_codec(name, **PARAMS[name])
    raw = _payload_for(codec)
    expected = codec.encode(raw)

    clone = pickle.loads(pickle.dumps(codec))
    assert clone.encode(raw) == expected
    decoded = clone.decode(expected, _decode_arg(codec, raw))
    if isinstance(codec, ByteCodec):
        assert bytes(decoded) == bytes(codec.decode(expected, len(raw)))
    else:
        assert np.array_equal(decoded, codec.decode(expected, raw.size))


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_spec_rebuilds_equivalent_codec(name):
    codec = make_codec(name, **PARAMS[name])
    spec = codec.spec()
    assert spec == (name, tuple(sorted(PARAMS[name].items())))
    rebuilt = from_spec(spec)
    assert type(rebuilt) is type(codec)
    raw = _payload_for(codec)
    assert rebuilt.encode(raw) == codec.encode(raw)


def test_spec_params_default_empty():
    codec = make_codec("zlib-bytes")
    assert codec.spec() == ("zlib-bytes", ())
    assert from_spec(codec.spec()).encode(b"x" * 64) == codec.encode(b"x" * 64)


def test_isabela_pickle_drops_design_cache_and_lock():
    """ISABELA keeps a thread lock and a per-window design-matrix
    cache; pickling must drop both (locks don't pickle, caches are
    derived state) and unpickling must rebuild a usable instance."""
    codec = make_codec("isabela", window=256, n_coeffs=16)
    raw = _payload_for(codec)
    payload = codec.encode(raw)  # populates the design cache
    assert codec._design  # the cache is actually exercised
    state = codec.__getstate__()
    assert "_design_lock" not in state
    assert state["_design"] == {}
    clone = pickle.loads(pickle.dumps(codec))
    assert clone._design == {}
    assert clone.encode(raw) == payload
    assert np.array_equal(
        clone.decode(payload, raw.size), codec.decode(payload, raw.size)
    )
