"""Vectored I/O, read coalescing, readahead, and cache pinning.

Covers the new PFS surface (``SimFileHandle.readv``,
``SimulatedPFS.extent_cached``, ``BlockCache`` pins) and the
:class:`~repro.core.engine.scheduler.IOScheduler` knobs end to end:
coalescing and readahead may only change the I/O *schedule* — never a
result byte — and ``coalesce_gap=0`` must reproduce the uncoalesced
accounting exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.pfs.blockcache import BlockCache


# ----------------------------------------------------------------------
# SimFileHandle.readv unit contract
# ----------------------------------------------------------------------
def _fs_with_file(payload: bytes, path: str = "/f"):
    fs = SimulatedPFS()
    fs.write_file(path, payload)
    return fs, fs.session()


def test_readv_one_seek_contiguous_transfer():
    payload = bytes(range(200)) * 5  # 1000 bytes
    fs, session = _fs_with_file(payload)
    handle = session.open("/f")
    extents = [(10, 20), (50, 30), (300, 100)]
    seeks0 = session.stats.seeks
    bytes0 = session.stats.bytes_read
    slices = handle.readv(extents)
    assert [bytes(s) for s in slices] == [
        payload[o : o + n] for o, n in extents
    ]
    # One seek, one contiguous transfer spanning first to last extent.
    assert session.stats.seeks - seeks0 == 1
    assert session.stats.bytes_read - bytes0 == 400 - 10
    assert session.stats.vectored_reads == 1


def test_readv_validates_extents():
    payload = b"x" * 100
    fs, session = _fs_with_file(payload)
    handle = session.open("/f")
    with pytest.raises(ValueError):
        handle.readv([(50, 10), (10, 10)])  # not offset-sorted
    with pytest.raises(ValueError):
        handle.readv([(10, -1)])


def test_extent_cached_is_observational():
    payload = b"y" * 512
    fs, session = _fs_with_file(payload)
    assert not fs.extent_cached("/f", 0, 64)
    session.open("/f").read(0, 64)
    assert fs.extent_cached("/f", 0, 64)
    assert fs.extent_cached("/f", 16, 32)
    assert not fs.extent_cached("/f", 0, 65)
    # Asking must not itself populate the cache.
    assert not fs.extent_cached("/f", 100, 10)
    assert not fs.extent_cached("/f", 100, 10)


def test_iostats_copy_and_merge_carry_vectored_reads():
    payload = b"z" * 256
    fs, session = _fs_with_file(payload)
    session.open("/f").readv([(0, 16), (32, 16)])
    snap = session.stats.copy()
    assert snap.vectored_reads == 1
    merged = fs.session().stats
    merged.merge(snap)
    assert merged.vectored_reads == 1


# ----------------------------------------------------------------------
# Engine-level coalescing / readahead
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def built_store():
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(32, 32), n_bins=16, target_block_bytes=8 * 1024)
    MLOCWriter(fs, "/store", config).write(
        gts_like((256, 256), seed=7), variable="field"
    )
    return fs


_SC_QUERY = Query(region=((32, 160), (32, 160)), output="values", plod_level=3)


def test_zero_gap_is_identity(built_store):
    """coalesce_gap=0 keeps the exact uncoalesced I/O accounting."""
    fs = built_store
    plain = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    gated = MLOCStore.open(fs, "/store", "field", n_ranks=4, coalesce_gap=0)
    fs.clear_cache()
    a = plain.query(_SC_QUERY)
    fs.clear_cache()
    b = gated.query(_SC_QUERY)
    assert np.array_equal(a.values, b.values)
    for key in ("seeks", "bytes_read", "files_opened", "vectored_reads"):
        assert a.stats[key] == b.stats[key], key
    assert b.stats["coalesced_reads"] == 0
    assert a.times.io == b.times.io


def test_coalescing_reduces_seeks_identical_results(built_store):
    fs = built_store
    plain = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    vectored = MLOCStore.open(
        fs, "/store", "field", n_ranks=4, coalesce_gap=4096
    )
    fs.clear_cache()
    a = plain.query(_SC_QUERY)
    fs.clear_cache()
    b = vectored.query(_SC_QUERY)
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.values, b.values)
    assert b.stats["coalesced_reads"] > 0
    assert b.stats["vectored_reads"] > 0
    assert b.stats["seeks"] < a.stats["seeks"]
    # Coalescing may read gap bytes, never fewer than the blocks need.
    assert b.stats["bytes_read"] >= a.stats["bytes_read"]


def test_readahead_warms_later_queries(built_store):
    fs = built_store
    store = MLOCStore.open(
        fs, "/store", "field", n_ranks=4, coalesce_gap=4096, readahead=16 * 1024
    )
    baseline = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    fs.clear_cache()
    first = store.query(Query(region=((32, 160), (32, 160)), output="values", plod_level=2))
    second = store.query(Query(region=((32, 160), (32, 160)), output="values", plod_level=4))
    assert second.stats["readahead_hits"] > 0
    fs.clear_cache()
    baseline.query(Query(region=((32, 160), (32, 160)), output="values", plod_level=2))
    cold = baseline.query(Query(region=((32, 160), (32, 160)), output="values", plod_level=4))
    assert np.array_equal(second.values, cold.values)
    assert first.stats["readahead_hits"] == 0  # nothing prefetched yet


def test_knob_validation(built_store):
    fs = built_store
    with pytest.raises(ValueError):
        MLOCStore.open(fs, "/store", "field", coalesce_gap=-1)
    with pytest.raises(ValueError):
        MLOCStore.open(fs, "/store", "field", readahead=-1)


def test_with_ranks_carries_engine_knobs(built_store):
    fs = built_store
    store = MLOCStore.open(
        fs, "/store", "field", n_ranks=4, coalesce_gap=2048, readahead=512
    )
    view = store.with_ranks(8)
    assert view.executor.coalesce_gap == 2048
    assert view.executor.readahead == 512
    assert view.executor.n_ranks == 8


# ----------------------------------------------------------------------
# BlockCache pinning
# ----------------------------------------------------------------------
def _key(name: str) -> tuple:
    return (0, f"/{name}", 0)


def test_pin_blocks_eviction_and_release_restores_it():
    cache = BlockCache(100)
    cache.put(_key("a"), b"A" * 40)
    cache.put(_key("b"), b"B" * 40)
    assert cache.pin(_key("a"), owner="s1")
    cache.put(_key("c"), b"C" * 40)  # evicts the unpinned LRU victim: "b"
    assert cache.get(_key("a")) is not None
    assert cache.get(_key("b")) is None
    cache.release("s1")
    # "a" is evictable again: the next over-budget put can take it.
    cache.put(_key("d"), b"D" * 40)
    assert cache.get(_key("d")) is not None
    assert cache.stats.current_bytes <= 100


def test_all_pinned_tolerates_overshoot():
    cache = BlockCache(100)
    cache.put(_key("a"), b"A" * 60)
    cache.pin(_key("a"), owner="s")
    cache.put(_key("b"), b"B" * 30)
    cache.pin(_key("b"), owner="s")
    # Re-inserting a pinned key with a larger payload pushes past the
    # budget while everything resident is pinned: the cache tolerates
    # the overshoot instead of evicting a held plane.
    cache.put(_key("b"), b"B" * 50)
    assert cache.get(_key("a")) is not None
    assert cache.get(_key("b")) is not None
    assert cache.stats.current_bytes == 110
    # An unpinned insert is evicted first, restoring the budget.
    cache.put(_key("c"), b"C" * 20)
    assert cache.get(_key("c")) is None
    assert cache.stats.current_bytes == 110


def test_pin_missing_key_is_noop():
    cache = BlockCache(10)
    assert not cache.pin(_key("ghost"), owner="s")
    assert cache.pinned_keys() == []
    assert cache.release("s") == 0


def test_invalidate_spares_pinned_keys():
    cache = BlockCache(100)
    cache.put(_key("f"), b"A" * 10)
    cache.pin(_key("f"), owner="s")
    assert cache.invalidate("/f") == 0
    assert cache.pinned_keys() == [_key("f")]
    assert cache.get(_key("f")) == b"A" * 10
    cache.put(_key("g"), b"B" * 10)
    assert cache.invalidate() == 1  # only the unpinned entry goes
    assert _key("f") in cache
    assert _key("g") not in cache
    cache.release("s")
    assert cache.invalidate() == 1


def test_touch_refreshes_recency_without_stats():
    cache = BlockCache(100)
    cache.put(_key("a"), b"A" * 40)
    cache.put(_key("b"), b"B" * 40)
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    assert cache.touch(_key("a"))
    assert not cache.touch(_key("ghost"))
    assert (cache.stats.hits, cache.stats.misses) == (hits0, misses0)
    cache.put(_key("c"), b"C" * 40)  # LRU is now "b", not "a"
    assert cache.get(_key("a")) is not None
    assert cache.get(_key("b")) is None
