"""Integration coverage for the remaining layout variants:

V-S-M order, hierarchical curve, Z-order/row-major curves, equal-width
binning, and the fpzip-like / zlib-float codecs — each exercised
through the full write/query path against NumPy ground truth, plus the
subset-resolution x PLoD combination.
"""

import numpy as np
import pytest

from repro.core import MLOCConfig, MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


def build(data, **config_kwargs):
    fs = SimulatedPFS()
    defaults = dict(
        chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096, codec="zlib-bytes"
    )
    defaults.update(config_kwargs)
    config = MLOCConfig(**defaults)
    MLOCWriter(fs, "/v", config).write(data, variable="f")
    return fs, MLOCStore.open(fs, "/v", "f", n_ranks=4)


@pytest.fixture(scope="module")
def data():
    return gts_like((128, 128), seed=11)


def check_all_patterns(fs, store, data):
    flat = data.reshape(-1)
    lo, hi = np.quantile(flat, [0.35, 0.65])
    region = ((24, 104), (8, 120))

    r = store.query(Query(value_range=(lo, hi), output="positions"))
    assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))

    r = store.query(Query(region=region, output="values"))
    mask = np.zeros(data.shape, dtype=bool)
    mask[24:104, 8:120] = True
    expect = np.flatnonzero(mask.reshape(-1))
    assert np.array_equal(r.positions, expect)
    assert np.array_equal(r.values, flat[expect])

    r = store.query(Query(value_range=(lo, hi), region=region, output="values"))
    expect2 = np.flatnonzero(mask.reshape(-1) & (flat >= lo) & (flat <= hi))
    assert np.array_equal(r.positions, expect2)


class TestLayoutVariants:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"level_order": "VSM"},
            {"curve": "zorder"},
            {"curve": "rowmajor"},
            {"curve": "hierarchical"},
            {"binning": "equal-width"},
            {"level_order": "VS", "codec": "fpzip-like"},
            {"level_order": "VS", "codec": "zlib-float"},
            {"level_order": "VS", "codec": "null-float"},
            {"level_order": "VSM", "curve": "hierarchical", "binning": "equal-width"},
        ],
        ids=lambda k: ",".join(f"{a}={b}" for a, b in k.items()),
    )
    def test_all_patterns(self, data, kwargs):
        fs, store = build(data, **kwargs)
        check_all_patterns(fs, store, data)


class TestSubsetPlusPLoD:
    """Both multiresolution mechanisms composed in one query."""

    @pytest.fixture(scope="class")
    def hier(self, data):
        return build(data, curve="hierarchical")

    def test_resolution_and_plod_compose(self, hier, data):
        fs, store = hier
        flat = data.reshape(-1)
        fs.clear_cache()
        r = store.query(Query(resolution_level=1, output="values", plod_level=2))
        truth = flat[r.positions]
        rel = np.abs(r.values - truth) / np.abs(truth)
        assert 0 < rel.max() < 3e-4
        # Subset level 1 of an 8x8 grid = 4 chunks of 64.
        assert r.n_results == 4 * 16 * 16

    def test_combined_reads_less_than_either_alone(self, hier, data):
        fs, store = hier
        def bytes_for(**q):
            fs.clear_cache()
            return store.query(Query(output="values", **q)).stats["bytes_read"]

        full = bytes_for()
        plod_only = bytes_for(plod_level=2)
        subset_only = bytes_for(resolution_level=1)
        both = bytes_for(plod_level=2, resolution_level=1)
        assert both < plod_only
        assert both < subset_only
        assert subset_only < full and plod_only < full


class TestVSMPlodSemantics:
    def test_vsm_plod_levels_error_monotone(self, data):
        fs, store = build(data, level_order="VSM")
        flat = data.reshape(-1)
        errs = []
        for level in (1, 3, 7):
            fs.clear_cache()
            r = store.query(
                Query(region=((0, 64), (0, 64)), output="values", plod_level=level)
            )
            errs.append(np.abs(r.values - flat[r.positions]).max())
        assert errs[0] > errs[1] > errs[2] == 0.0

    def test_vsm_full_precision_contiguity_advantage(self, data):
        """V-S-M keeps a chunk's bytes together: full-precision access
        needs fewer seeks than under V-M-S (Table VII's mechanism)."""
        fs_vms, store_vms = build(data, level_order="VMS")
        fs_vsm, store_vsm = build(data, level_order="VSM")
        q = Query(region=((0, 64), (0, 64)), output="values", plod_level=7)
        fs_vms.clear_cache()
        seeks_vms = store_vms.query(q).stats["seeks"]
        fs_vsm.clear_cache()
        seeks_vsm = store_vsm.query(q).stats["seeks"]
        assert seeks_vsm <= seeks_vms
