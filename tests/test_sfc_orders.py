"""Tests for Z-order, chunk-grid linearization, and hierarchical order."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.hierarchical import (
    hierarchical_levels,
    hierarchical_order,
    level_prefix_counts,
)
from repro.sfc.linearize import CURVES, chunk_curve_order
from repro.sfc.zorder import zorder_decode, zorder_encode


class TestZOrder:
    def test_known_2d_interleave(self):
        # (1, 1) at 1 bit -> index 3; (1, 0) -> 2 (axis 0 most significant).
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        assert zorder_encode(coords, 1).tolist() == [0, 1, 2, 3]

    @pytest.mark.parametrize("ndims,nbits", [(2, 4), (3, 3), (4, 2)])
    def test_roundtrip(self, ndims, nbits):
        n = (1 << nbits) ** ndims
        idx = np.arange(n, dtype=np.uint64)
        coords = zorder_decode(idx, ndims, nbits)
        assert np.array_equal(zorder_encode(coords, nbits), idx)

    def test_validation(self):
        with pytest.raises(ValueError):
            zorder_encode(np.array([[2, 0]]), 1)
        with pytest.raises(ValueError):
            zorder_encode(np.zeros((1, 9), dtype=np.int64), 8)


class TestChunkCurveOrder:
    @pytest.mark.parametrize("curve", CURVES)
    def test_is_permutation(self, curve):
        order = chunk_curve_order((4, 8), curve)
        assert sorted(order.order.tolist()) == list(range(32))

    def test_rowmajor_is_identity(self):
        order = chunk_curve_order((3, 5), "rowmajor")
        assert np.array_equal(order.order, np.arange(15))

    def test_inverse_consistency(self):
        order = chunk_curve_order((8, 8), "hilbert")
        ids = np.arange(64)
        assert np.array_equal(order.chunks_at(order.positions_of(ids)), ids)

    def test_non_power_of_two_grid(self):
        order = chunk_curve_order((3, 5), "hilbert")
        assert sorted(order.order.tolist()) == list(range(15))

    def test_1d_grid_is_identity(self):
        order = chunk_curve_order((7,), "hilbert")
        assert np.array_equal(order.order, np.arange(7))

    def test_hilbert_preserves_adjacency_pow2(self):
        order = chunk_curve_order((8, 8), "hilbert")
        coords = np.stack(np.divmod(order.order, 8), axis=1)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            chunk_curve_order((4, 4), "peano")

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            chunk_curve_order((0, 4), "hilbert")
        with pytest.raises(ValueError):
            chunk_curve_order((), "hilbert")


class TestHierarchical:
    def test_level_counts_8x8(self):
        levels = hierarchical_levels((8, 8))
        # Level 0: origin; level 1: 2x2 lattice minus origin; level 2:
        # 4x4 lattice minus coarser; level 3: the rest.
        assert np.bincount(levels).tolist() == [1, 3, 12, 48]

    def test_prefix_counts(self):
        assert level_prefix_counts((8, 8)).tolist() == [1, 4, 16, 64]

    def test_prefix_counts_3d(self):
        assert level_prefix_counts((4, 4, 4)).tolist() == [1, 8, 64]

    def test_order_groups_levels_contiguously(self):
        order = hierarchical_order((8, 8))
        levels = hierarchical_levels((8, 8))
        ordered_levels = levels[order.order]
        assert np.all(np.diff(ordered_levels) >= 0)

    def test_prefix_is_uniform_lattice(self):
        """Reading levels <= L yields exactly the 2^L-per-axis lattice —
        the subset-based multiresolution guarantee."""
        order = hierarchical_order((8, 8))
        prefix = order.order[:16]  # levels 0..2 = 4x4 lattice
        coords = np.stack(np.divmod(np.sort(prefix), 8), axis=1)
        expected = np.array([(i * 2, j * 2) for i in range(4) for j in range(4)])
        assert np.array_equal(coords, expected)

    def test_requires_power_of_two_square(self):
        with pytest.raises(ValueError, match="power-of-two"):
            hierarchical_order((6, 6))
        with pytest.raises(ValueError, match="equal extents"):
            hierarchical_order((4, 8))


@settings(max_examples=40, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=3),
    curve=st.sampled_from(CURVES),
)
def test_curve_order_permutation_property(dims, curve):
    order = chunk_curve_order(tuple(dims), curve)
    n = int(np.prod(dims))
    assert sorted(order.order.tolist()) == list(range(n))
    assert np.array_equal(order.positions_of(order.order), np.arange(n))
