"""Bit-identity of hierarchical-index answers (DESIGN.md's rule).

Enabling the hierarchical bitmap index changes plan *work* — chunks
proven empty from interior nodes are never fetched, compound queries
push the running intersection's chunk footprint into later variables —
but never any answer byte.  This suite pins that equivalence across
level orders, space-filling curves, execution backends, and the three
query families (value, compound, multi-variable), plus the invariance
of the persisted index bytes across write backends.
"""

import numpy as np
import pytest

from repro.core import (
    MLOCStore,
    MLOCWriter,
    Query,
    mloc_col,
    mloc_iso,
    multi_variable_query,
)
from repro.core.compound import VariableConstraint, compound_query
from repro.datasets import gts_like
from repro.index.hbi import hbi_path
from repro.pfs import SimulatedPFS

CONFIGS = [
    ("VMS-hilbert", dict(level_order="VMS", curve="hilbert")),
    ("VSM-zorder", dict(level_order="VSM", curve="zorder")),
    ("VMS-rowmajor", dict(level_order="VMS", curve="rowmajor")),
    ("VMS-hierarchical", dict(level_order="VMS", curve="hierarchical")),
]

QUERIES = [
    Query(value_range=(0.2, 0.8), output="values"),
    Query(value_range=(0.7, 0.75), output="positions"),
    Query(value_range=(0.1, 0.5), region=((0, 64), (0, 64)), output="values"),
    Query(region=((16, 96), (32, 128)), output="values", plod_level=3),
]


def _write(config, data, fs=None, variable="field"):
    fs = fs if fs is not None else SimulatedPFS()
    MLOCWriter(fs, "/eq", config).write(data, variable=variable)
    return fs


@pytest.fixture(scope="module")
def eq_field() -> np.ndarray:
    return gts_like((128, 128), seed=21)


class TestValueQueries:
    @pytest.mark.parametrize("label,overrides", CONFIGS)
    def test_bit_identical_across_layouts(self, eq_field, label, overrides):
        config = mloc_col((16, 16), n_bins=8, target_block_bytes=4096, **overrides)
        fs = _write(config, eq_field)
        flat = MLOCStore.open(fs, "/eq", "field", n_ranks=4, use_hbi=False)
        hier = MLOCStore.open(fs, "/eq", "field", n_ranks=4, use_hbi=True)
        for query in QUERIES:
            fs.clear_cache()
            r0 = flat.query(query)
            fs.clear_cache()
            r1 = hier.query(query)
            assert np.array_equal(r0.positions, r1.positions), (label, query)
            if r0.values is None:
                assert r1.values is None
            else:
                assert np.array_equal(r0.values, r1.values), (label, query)
            assert r0.stats["chunks_pruned"] == 0
            assert r1.stats["chunks_pruned"] >= 0
            assert r1.stats["bytes_read"] <= r0.stats["bytes_read"]

    @pytest.mark.parametrize("maker", [mloc_col, mloc_iso])
    def test_bit_identical_across_exec_backends(self, eq_field, maker):
        config = maker((16, 16), n_bins=8, target_block_bytes=4096)
        fs = _write(config, eq_field)
        flat = MLOCStore.open(fs, "/eq", "field", backend="serial", use_hbi=False)
        hier = MLOCStore.open(
            fs, "/eq", "field", backend="threads", n_threads=4, use_hbi=True
        )
        for query in QUERIES:
            fs.clear_cache()
            r0 = flat.query(query)
            fs.clear_cache()
            r1 = hier.query(query)
            assert np.array_equal(r0.positions, r1.positions)
            if r0.values is not None:
                assert np.array_equal(r0.values, r1.values)

    def test_env_var_opt_in(self, eq_field, monkeypatch):
        config = mloc_col((16, 16), n_bins=8)
        fs = _write(config, eq_field)
        monkeypatch.setenv("MLOC_HBI", "1")
        assert MLOCStore.open(fs, "/eq", "field").use_hbi
        monkeypatch.setenv("MLOC_HBI", "0")
        assert not MLOCStore.open(fs, "/eq", "field").use_hbi
        # An explicit argument always wins over the environment.
        monkeypatch.setenv("MLOC_HBI", "1")
        assert not MLOCStore.open(fs, "/eq", "field", use_hbi=False).use_hbi


@pytest.fixture(scope="module")
def tri_var():
    fs = SimulatedPFS()
    # Small blocks so plans resolve to near-chunk granularity: the
    # pushdown prunes chunks, and reads are block-granular, so byte
    # savings require blocks that don't straddle many chunks.
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=512)
    fields = {
        "temp": gts_like((128, 128), seed=1),
        "humidity": gts_like((128, 128), seed=2),
        "pressure": gts_like((128, 128), seed=3),
    }
    writer = MLOCWriter(fs, "/cv", cfg)
    for name, data in fields.items():
        writer.write(data, variable=name)
    return fs, fields


def _open_all(fs, names, use_hbi):
    return {
        name: MLOCStore.open(fs, "/cv", name, n_ranks=4, use_hbi=use_hbi)
        for name in names
    }


class TestCompoundQueries:
    def test_bit_identical_and_never_more_io(self, tri_var):
        fs, fields = tri_var
        t = fields["temp"].reshape(-1)
        h = fields["humidity"].reshape(-1)
        constraints = [
            VariableConstraint.between(
                "temp", *map(float, np.quantile(t, [0.9, 0.97]))
            ),
            VariableConstraint.above("humidity", float(np.quantile(h, 0.5))),
            VariableConstraint.below(
                "pressure", float(np.quantile(fields["pressure"], 0.6))
            ),
        ]
        fs.clear_cache()
        r0 = compound_query(_open_all(fs, fields, False), constraints)
        fs.clear_cache()
        r1 = compound_query(_open_all(fs, fields, True), constraints)
        assert np.array_equal(r0.positions, r1.positions)
        for name in r0.values:
            assert np.array_equal(r0.values[name], r1.values[name])
        assert r0.stats["chunks_pruned"] == 0
        assert r1.stats["chunks_pruned"] > 0
        assert r1.stats["bytes_read"] < r0.stats["bytes_read"]

    def test_union_of_ranges_bit_identical(self, tri_var):
        fs, fields = tri_var
        t = fields["temp"].reshape(-1)
        q = np.quantile(t, [0.05, 0.1, 0.85, 0.9])
        constraints = [
            VariableConstraint(
                "temp",
                ((float(q[0]), float(q[1])), (float(q[2]), float(q[3]))),
            ),
            VariableConstraint.above(
                "humidity", float(np.quantile(fields["humidity"], 0.3))
            ),
        ]
        fs.clear_cache()
        r0 = compound_query(_open_all(fs, fields, False), constraints)
        fs.clear_cache()
        r1 = compound_query(_open_all(fs, fields, True), constraints)
        assert np.array_equal(r0.positions, r1.positions)
        for name in r0.values:
            assert np.array_equal(r0.values[name], r1.values[name])


class TestMultiVariable:
    def test_bit_identical_with_hierarchical_exchange(self, tri_var):
        fs, fields = tri_var
        t = fields["temp"].reshape(-1)
        lo, hi = map(float, np.quantile(t, [0.8, 0.95]))
        flat_stores = _open_all(fs, ["temp", "humidity"], False)
        hier_stores = _open_all(fs, ["temp", "humidity"], True)
        fs.clear_cache()
        r0 = multi_variable_query(
            flat_stores["temp"], [flat_stores["humidity"]], value_range=(lo, hi)
        )
        fs.clear_cache()
        r1 = multi_variable_query(
            hier_stores["temp"], [hier_stores["humidity"]], value_range=(lo, hi)
        )
        assert np.array_equal(r0.positions, r1.positions)
        assert np.array_equal(r0.values["humidity"], r1.values["humidity"])
        # The flat run exchanges the whole-domain WAH payload verbatim;
        # the hierarchical run records both sizes for comparison.
        assert r0.exchange_bytes == r0.flat_exchange_bytes
        assert r1.flat_exchange_bytes == r0.flat_exchange_bytes
        assert r1.exchange_bytes > 0


class TestPersistedBytes:
    def test_hbi_file_invariant_across_write_backends(self, eq_field):
        blobs = {}
        for backend, workers in [("serial", None), ("threads", 4), ("processes", 2)]:
            fs = SimulatedPFS()
            config = mloc_col((16, 16), n_bins=8, target_block_bytes=4096)
            MLOCWriter(
                fs, "/wb", config, write_backend=backend, write_workers=workers
            ).write(eq_field, variable="field")
            blobs[backend] = bytes(
                fs.session().open(hbi_path("/wb/field")).read_all()
            )
        assert blobs["serial"] == blobs["threads"] == blobs["processes"]

    def test_lazy_build_matches_persisted(self, eq_field):
        from repro.index.hbi import build_from_store

        fs = _write(mloc_col((16, 16), n_bins=8), eq_field)
        store = MLOCStore.open(fs, "/eq", "field", use_hbi=True)
        persisted = bytes(fs.session().open(hbi_path(store.root)).read_all())
        # Delete the persisted record: the store's lazy property must
        # rebuild an identical index from the flat bin subfiles.
        fs.delete(hbi_path(store.root))
        fresh = MLOCStore.open(fs, "/eq", "field", use_hbi=True)
        assert fresh.hbi.to_bytes() == persisted
        assert build_from_store(store).to_bytes() == persisted
