"""Fault plans and the verified, self-healing read path.

Covers the three tentpole guarantees of the fault-injection subsystem:

* a :class:`FaultPlan` is a pure function of its seed — identical
  decisions across plan objects, runs, and attempt orderings;
* the executor's verified read retries transient failures with
  exponential backoff charged to the *simulated* clock, and quarantines
  blocks that exhaust their retries;
* a decoded block can only enter the shared cache after its payload
  passed the CRC check, so the cache can never serve corrupt bytes —
  not even to a later clean store sharing it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DegradedResultError, MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.pfs.blockcache import BlockCache
from repro.pfs.faults import (
    FaultDecision,
    FaultPlan,
    FaultyPFS,
    TransientIOError,
)

pytestmark = pytest.mark.chaos

BUSY_PLAN = dict(
    transient_error_rate=0.3,
    bitflip_rate=0.2,
    torn_read_rate=0.1,
    sticky_corruption_rate=0.1,
    latency_spike_rate=0.2,
)

_SAMPLE_EXTENTS = [
    (path, offset, length, attempt)
    for path in ("/s/f/bin_0000.data", "/s/f/bin_0003.index")
    for offset in (0, 512, 4096)
    for length in (1, 100, 8192)
    for attempt in (0, 1, 2)
]


# ----------------------------------------------------------------------
# FaultPlan: pure, seeded, validated
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(seed=42, **BUSY_PLAN)
        b = FaultPlan(seed=42, **BUSY_PLAN)
        for ext in _SAMPLE_EXTENTS:
            assert a.decide(*ext) == b.decide(*ext)

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, **BUSY_PLAN)
        b = FaultPlan(seed=2, **BUSY_PLAN)
        assert any(a.decide(*ext) != b.decide(*ext) for ext in _SAMPLE_EXTENTS)

    def test_zero_rates_are_clean(self):
        plan = FaultPlan(seed=7)
        for ext in _SAMPLE_EXTENTS:
            assert plan.decide(*ext).clean

    def test_rate_one_transient_always_fails(self):
        plan = FaultPlan(seed=7, transient_error_rate=1.0)
        for ext in _SAMPLE_EXTENTS:
            assert plan.decide(*ext).transient

    def test_non_subfile_paths_never_faulted(self):
        plan = FaultPlan(
            seed=7, transient_error_rate=1.0, bitflip_rate=1.0, torn_read_rate=1.0
        )
        assert plan.decide("/s/f/meta", 0, 100, 0).clean
        assert plan.decide("/s/f/meta", 0, 100, 0) == FaultDecision()

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="bitflip_rate"):
            FaultPlan(bitflip_rate=1.5)
        with pytest.raises(ValueError, match="latency_spike_seconds"):
            FaultPlan(latency_spike_seconds=-1.0)

    def test_sticky_only_keeps_rot_drops_transients(self):
        plan = FaultPlan(seed=11, sticky_corruption_rate=0.5, **{
            k: v for k, v in BUSY_PLAN.items() if k != "sticky_corruption_rate"
        })
        quiet = plan.sticky_only()
        assert quiet.seed == plan.seed
        assert quiet.sticky_corruption_rate == plan.sticky_corruption_rate
        for ext in _SAMPLE_EXTENTS:
            decision = quiet.decide(*ext)
            assert not decision.transient
            assert decision.torn_length is None
            assert decision.stall_seconds == 0.0
            # Rot is attempt-independent and agrees between the plans.
            path, offset, length, _ = ext
            assert quiet.is_sticky(path, offset, length) == plan.is_sticky(
                path, offset, length
            )

    def test_sticky_flip_is_stable_and_in_range(self):
        plan = FaultPlan(seed=3, sticky_corruption_rate=1.0)
        for length in (1, 7, 4096):
            byte, bit = plan.sticky_flip("/s/f/bin_0000.data", 64, length)
            assert (byte, bit) == plan.sticky_flip("/s/f/bin_0000.data", 64, length)
            assert 0 <= byte < length and 0 <= bit < 8


# ----------------------------------------------------------------------
# FaultyPFS: wrapping, passthrough, injection accounting
# ----------------------------------------------------------------------
def _one_file_fs(payload: bytes = b"x" * 1000):
    fs = SimulatedPFS()
    fs.write_file("/s/f/bin_0000.data", payload)
    return fs


class TestFaultyPFS:
    def test_zero_plan_is_bit_exact_passthrough(self):
        payload = bytes(range(256)) * 4
        fs = _one_file_fs(payload)
        ffs = FaultyPFS(fs)
        assert bytes(ffs.session().open("/s/f/bin_0000.data").read(0, 1024)) == payload
        assert ffs.injected.total_faults == 0

    def test_shared_namespace_with_base(self):
        fs = _one_file_fs()
        ffs = FaultyPFS(fs)
        fs.write_file("/s/f/bin_0001.data", b"later")
        assert ffs.exists("/s/f/bin_0001.data")
        assert fs.exists("/s/f/bin_0000.data")

    def test_cost_model_conflict_rejected(self):
        fs = _one_file_fs()
        with pytest.raises(ValueError, match="cost_model"):
            FaultyPFS(fs, cost_model=fs.cost_model)

    def test_transient_error_attributes_and_accounting(self):
        fs = _one_file_fs()
        ffs = FaultyPFS(fs, FaultPlan(seed=5, transient_error_rate=1.0))
        session = ffs.session()
        handle = session.open("/s/f/bin_0000.data")
        seeks_before = session.stats.seeks
        with pytest.raises(TransientIOError) as excinfo:
            handle.read(100, 50)
        assert excinfo.value.path == "/s/f/bin_0000.data"
        assert excinfo.value.offset == 100
        assert excinfo.value.length == 50
        assert excinfo.value.attempt == 0
        # The failed request still positioned the handle: one seek.
        assert session.stats.seeks == seeks_before + 1
        assert ffs.injected.transient_errors == 1
        # Attempt numbering advances per retry of the same extent.
        with pytest.raises(TransientIOError) as excinfo:
            handle.read(100, 50)
        assert excinfo.value.attempt == 1

    def test_reset_attempts_replays_the_same_draws(self):
        fs = _one_file_fs()
        plan = FaultPlan(seed=9, **BUSY_PLAN)
        ffs = FaultyPFS(fs, plan)

        def draw_round():
            out = []
            session = ffs.session()
            handle = session.open("/s/f/bin_0000.data")
            for offset in (0, 128, 512):
                try:
                    out.append(bytes(handle.read(offset, 64)))
                except TransientIOError:
                    out.append(None)
            return out

        first = draw_round()
        ffs.reset_attempts()
        assert draw_round() == first

    def test_latency_spike_charges_session_stall(self):
        fs = _one_file_fs()
        ffs = FaultyPFS(
            fs, FaultPlan(seed=2, latency_spike_rate=1.0, latency_spike_seconds=0.25)
        )
        session = ffs.session()
        session.open("/s/f/bin_0000.data").read(0, 100)
        assert session.stats.stall_seconds == pytest.approx(0.25)
        assert ffs.injected.latency_spikes == 1

    def test_with_plan_shares_files(self):
        fs = _one_file_fs(b"\x00" * 64)
        ffs = FaultyPFS(fs, FaultPlan(seed=1, bitflip_rate=1.0))
        quiet = ffs.with_plan(FaultPlan())
        data = bytes(quiet.session().open("/s/f/bin_0000.data").read(0, 64))
        assert data == b"\x00" * 64


# ----------------------------------------------------------------------
# Executor: retry/backoff on the simulated clock, quarantine, cache
# ----------------------------------------------------------------------
class _FirstAttemptFails(FaultPlan):
    """Every subfile extent fails exactly its first read attempt."""

    def decide(self, path, offset, length, attempt):
        if not self.applies_to(path) or length <= 0 or attempt > 0:
            return FaultDecision()
        return FaultDecision(transient=True)


def _small_store(fs=None, **options):
    if fs is None:
        fs = SimulatedPFS()
        config = mloc_col(chunk_shape=(16, 16), n_bins=4, target_block_bytes=2048)
        MLOCWriter(fs, "/s", config).write(gts_like((64, 64), seed=4), variable="f")
    return fs, MLOCStore.open(fs, "/s", "f", n_ranks=4, **options)


class TestVerifiedReadPath:
    def test_retry_recovers_and_charges_backoff(self):
        fs, clean_store = _small_store()
        ffs = FaultyPFS(fs, _FirstAttemptFails(seed=0))
        _, store = _small_store(ffs, max_read_retries=1, read_backoff=0.02)
        query = Query(value_range=(-np.inf, np.inf), output="values")
        fs.clear_cache()
        expected = clean_store.query(query)
        fs.clear_cache()
        result = store.query(query)
        # Every extent failed once and succeeded on retry: identical
        # answer, no quarantine, and one backoff stall per retry.
        assert np.array_equal(result.positions, expected.positions)
        assert np.array_equal(result.values, expected.values)
        assert result.stats["io_retries"] > 0
        assert result.stats["crc_failures"] == 0
        assert result.stats["quarantined_blocks"] == 0
        assert result.stats["stall_seconds"] == pytest.approx(
            0.02 * result.stats["io_retries"]
        )
        # The stalls flow into the cost model's response time.
        assert result.times.io > expected.times.io

    def test_exhausted_retries_quarantine_with_exact_accounting(self):
        fs, _ = _small_store()
        ffs = FaultyPFS(fs, FaultPlan(seed=0, transient_error_rate=1.0))
        retries, backoff = 2, 0.01
        _, store = _small_store(
            ffs, max_read_retries=retries, read_backoff=backoff, allow_partial=True
        )
        fs.clear_cache()
        result = store.query(Query(output="values"))
        # Every index block fails all attempts -> quarantined; with the
        # whole index gone every chunk is dropped before any data read.
        quarantined = result.stats["quarantined_blocks"]
        total_index_blocks = sum(
            table.shape[0] for table in store.meta.index_blocks
        )
        assert quarantined == total_index_blocks
        assert result.n_results == 0
        assert result.stats["dropped_points"] == store.n_elements
        assert sorted(result.stats["partial_chunks"]) == list(
            range(store.grid.n_chunks)
        )
        # Retry/backoff accounting is exact: R retries per extent, with
        # backoff * (2**R - 1) simulated stall each.
        assert result.stats["io_retries"] == retries * quarantined
        assert result.stats["stall_seconds"] == pytest.approx(
            quarantined * backoff * (2**retries - 1)
        )
        for (path, offset), reason in store.quarantined_blocks.items():
            assert path.endswith(".index") and offset >= 0
            assert "transient" in reason

    def test_strict_mode_raises_degraded_result_error(self):
        fs, _ = _small_store()
        ffs = FaultyPFS(fs, FaultPlan(seed=0, transient_error_rate=1.0))
        _, store = _small_store(ffs, max_read_retries=0)
        fs.clear_cache()
        with pytest.raises(DegradedResultError) as excinfo:
            store.query(Query(output="values"))
        assert excinfo.value.kind == "index"
        assert "allow_partial" in str(excinfo.value)

    def test_quarantine_persists_across_queries(self):
        fs, _ = _small_store()
        ffs = FaultyPFS(
            fs, FaultPlan(seed=1, sticky_corruption_rate=0.4, fault_suffixes=(".data",))
        )
        _, store = _small_store(ffs, max_read_retries=1, allow_partial=True)
        fs.clear_cache()
        store.query(Query(output="values"))
        first = set(store.quarantined_blocks)
        assert first
        fs.clear_cache()
        ffs.reset_attempts()
        second = store.query(Query(output="values"))
        # Rot is sticky: the same blocks stay quarantined, answered by
        # the degradation policy without burning fresh retries on them.
        assert set(store.quarantined_blocks) == first
        assert second.stats["io_retries"] == 0

    def test_cache_never_serves_a_corrupt_decode(self):
        fs, reference_store = _small_store()
        query = Query(value_range=(-np.inf, np.inf), output="values")
        fs.clear_cache()
        expected = reference_store.query(query)

        cache = BlockCache(32 << 20)
        ffs = FaultyPFS(fs, FaultPlan(seed=6, sticky_corruption_rate=0.5))
        _, faulty_store = _small_store(
            ffs, cache=cache, max_read_retries=1, allow_partial=True
        )
        fs.clear_cache()
        damaged = faulty_store.query(query)
        assert damaged.stats["quarantined_blocks"] > 0
        assert damaged.n_results < expected.n_results

        # A clean store sharing the *same* cache object must answer
        # bit-identically: only CRC-verified decodes ever entered it.
        _, clean_store = _small_store(fs, cache=cache)
        fs.clear_cache()
        result = clean_store.query(query)
        assert np.array_equal(result.positions, expected.positions)
        assert np.array_equal(result.values, expected.values)
