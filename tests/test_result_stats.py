"""The canonical stats-counter registry and its aggregators.

Satellite of the engine PR: every path that folds per-query
``QueryResult.stats`` into an aggregate (``query_many``,
``replay_trace``, the CLI) must consume the single registry in
:mod:`repro.core.result` instead of maintaining its own key list — the
pre-registry ``query_many`` silently dropped ``stall_seconds`` and
``cache_hit_raw_bytes``, exactly the drift this kills.
"""

from __future__ import annotations

import pytest

from repro.core import MLOCStore, Query
from repro.core.result import (
    FAULT_STAT_KEYS,
    SUMMED_STAT_KEYS,
    UNION_STAT_KEYS,
    aggregate_stats,
)


def test_aggregate_stats_sums_and_unions():
    per_query = [
        {"seeks": 3, "stall_seconds": 0.5, "partial_chunks": [2, 7]},
        {"seeks": 4, "stall_seconds": 0.25, "partial_chunks": [7, 1]},
    ]
    out = aggregate_stats(per_query)
    assert out["seeks"] == 7
    assert out["stall_seconds"] == pytest.approx(0.75)
    assert out["partial_chunks"] == [1, 2, 7]
    # Missing keys count as zero, so older recorded stats fold cleanly.
    assert out["bytes_read"] == 0
    assert out["crc_failures"] == 0


def test_aggregate_stats_empty_is_all_falsy():
    out = aggregate_stats([])
    for key, value in out.items():
        assert not value, key


def test_registry_shape():
    assert set(FAULT_STAT_KEYS) <= set(SUMMED_STAT_KEYS)
    assert "partial_chunks" in UNION_STAT_KEYS
    # The engine's new counters are registered.
    for key in ("vectored_reads", "coalesced_reads", "readahead_hits"):
        assert key in SUMMED_STAT_KEYS
    # Non-additive counters must NOT be in the summed list.
    for key in ("quarantined_blocks", "n_ranks", "backend", "n_queries"):
        assert key not in SUMMED_STAT_KEYS


def test_trace_fault_keys_are_the_registry():
    from repro.harness.trace import FAULT_STAT_KEYS as TRACE_KEYS

    assert TRACE_KEYS is FAULT_STAT_KEYS


def test_query_many_aggregates_every_summed_key(col_store):
    """The batch aggregate now carries the full registry.

    The hand-rolled pre-registry aggregate dropped ``stall_seconds``
    and ``cache_hit_raw_bytes``; summing from ``SUMMED_STAT_KEYS``
    makes the batch total of every registered counter equal the sum of
    its per-query values.
    """
    fs, store = col_store
    queries = [
        Query(region=((0, 64), (0, 64)), output="values"),
        Query(region=((32, 96), (32, 96)), output="values", plod_level=3),
        Query(value_range=(4.0, 5.0), output="positions"),
    ]
    fs.clear_cache()
    batch = store.query_many(queries)
    for key in SUMMED_STAT_KEYS:
        assert key in batch.stats, key
        expected = sum(r.stats.get(key, 0) for r in batch.results)
        assert batch.stats[key] == pytest.approx(expected), key
    assert batch.stats["n_queries"] == 3
    assert "quarantined_blocks" in batch.stats
    # Configuration values are per-store, not batch aggregates.
    assert "backend" not in batch.stats
    assert "n_ranks" not in batch.stats


def test_per_query_stats_cover_the_registry(col_store):
    """Every registered counter is actually emitted per query."""
    fs, store = col_store
    fs.clear_cache()
    result = store.query(Query(region=((0, 64), (0, 64)), output="values"))
    for key in SUMMED_STAT_KEYS + UNION_STAT_KEYS:
        assert key in result.stats, key


def test_runtime_stats_snapshot(col_store):
    fs, base = col_store
    store = MLOCStore(
        fs, base.root, base.meta, n_ranks=4,
        cache_bytes=256 * 1024, plan_cache=8,
    )
    q = Query(region=((0, 64), (0, 64)), output="values")
    store.query(q)
    store.query(q)
    snap = store.runtime_stats()
    assert snap["n_ranks"] == 4
    assert snap["backend"] == "serial"
    assert snap["plan_cache"]["hits"] == 1
    assert snap["plan_cache"]["misses"] == 1
    assert snap["plan_cache"]["size"] == 1
    assert snap["plan_cache"]["capacity"] == 8
    assert snap["block_cache"]["hits"] > 0
    assert snap["block_cache"]["current_bytes"] > 0
    assert snap["block_cache"]["pinned_blocks"] == 0
    assert snap["quarantine"] == {}
    # Without the optional structures the sections are absent/plain.
    bare = MLOCStore(fs, base.root, base.meta, n_ranks=4)
    bare_snap = bare.runtime_stats()
    assert "plan_cache" not in bare_snap
    assert "block_cache" not in bare_snap
