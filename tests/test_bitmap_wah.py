"""Property tests for the WAH codec (Hypothesis).

The hierarchical index and the multi-variable exchange both lean on
three WAH contracts: encode/decode is lossless, the positions-based
encoder agrees with the dense one, and compressed-domain operations
(group AND/OR, pad-blind cardinality) match their dense counterparts.
Each is pinned here over randomized lengths and densities, including
the all-zeros / all-ones extremes where fill runs dominate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.index.bitmap as bitmap_mod
from repro.index.bitmap import (
    Bitmap,
    groups_to_bitmap,
    wah_cardinality,
    wah_decode,
    wah_encode,
    wah_expand_groups,
    wah_from_positions,
)

# Lengths straddle several 63-bit group boundaries, including exact
# multiples (no tail padding) and off-by-one neighbours.
_NBITS = st.one_of(
    st.integers(min_value=1, max_value=300),
    st.sampled_from([63, 64, 125, 126, 127, 630, 1260, 1261]),
)


@st.composite
def _bit_sets(draw, nbits=None):
    """(nbits, sorted unique positions) across sparse/dense regimes."""
    if nbits is None:
        nbits = draw(_NBITS)
    density = draw(st.sampled_from([0.0, 0.02, 0.2, 0.5, 0.95, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    positions = np.flatnonzero(rng.random(nbits) < density).astype(np.int64)
    return nbits, positions


@settings(max_examples=80, deadline=None)
@given(case=_bit_sets())
def test_encode_decode_roundtrip(case):
    nbits, positions = case
    bm = Bitmap.from_positions(positions, nbits)
    words = wah_encode(bm.buffer, nbits)
    assert np.array_equal(wah_decode(words, nbits), bm.buffer)
    # Re-encoding the expansion reproduces the words exactly: the
    # encoder emits maximal runs, so the encoding is canonical.
    assert np.array_equal(
        bitmap_mod._groups_to_words(wah_expand_groups(words)), words
    )


@settings(max_examples=80, deadline=None)
@given(case=_bit_sets())
def test_positions_encoder_matches_dense(case):
    nbits, positions = case
    dense = wah_encode(Bitmap.from_positions(positions, nbits).buffer, nbits)
    assert np.array_equal(wah_from_positions(positions, nbits), dense)


@settings(max_examples=80, deadline=None)
@given(case=_bit_sets())
def test_cardinality_matches_count(case):
    nbits, positions = case
    bm = Bitmap.from_positions(positions, nbits)
    words = wah_encode(bm.buffer, nbits)
    assert wah_cardinality(words) == bm.count() == positions.size


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_group_domain_and_or_match_dense(data):
    nbits = data.draw(_NBITS)
    _, pos_a = data.draw(_bit_sets(nbits=nbits))
    _, pos_b = data.draw(_bit_sets(nbits=nbits))
    a = Bitmap.from_positions(pos_a, nbits)
    b = Bitmap.from_positions(pos_b, nbits)
    ga = wah_expand_groups(wah_encode(a.buffer, nbits))
    gb = wah_expand_groups(wah_encode(b.buffer, nbits))
    assert groups_to_bitmap(ga & gb, nbits) == (a & b)
    assert groups_to_bitmap(ga | gb, nbits) == (a | b)


def test_empty_bitmap_is_one_zero_fill():
    words = wah_from_positions(np.empty(0, dtype=np.int64), 1000)
    assert words.size == 1
    assert wah_cardinality(words) == 0
    assert np.array_equal(wah_decode(words, 1000), np.zeros(125, dtype=np.uint8))


def test_fill_run_count_guard(monkeypatch):
    """Regression: oversized fill runs must raise, not wrap silently.

    A real overflow needs 2**62 groups, so the guard is exercised by
    shrinking the count mask — the comparison path is identical.
    """
    assert int(bitmap_mod._COUNT_MASK) == (1 << 62) - 1
    monkeypatch.setattr(bitmap_mod, "_COUNT_MASK", np.uint64(3))
    ok = bitmap_mod._groups_to_words(np.zeros(3, dtype=np.uint64))
    assert ok.size == 1
    with pytest.raises(ValueError, match="62-bit count field"):
        bitmap_mod._groups_to_words(np.zeros(4, dtype=np.uint64))
