"""Tests for the FastBit baseline: correctness and cost mechanisms."""

import numpy as np
import pytest

from repro.baselines.fastbit import FastBitStore
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def fb_setup():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=6)
    store = FastBitStore.build(fs, "/fb", data, n_bins=64, n_ranks=4)
    return fs, data, store


class TestCorrectness:
    @pytest.mark.parametrize("quantiles", [(0.3, 0.32), (0.0, 0.5), (0.95, 1.0)])
    def test_region_query_exact(self, fb_setup, quantiles):
        fs, data, store = fb_setup
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, quantiles)
        fs.clear_cache()
        r = store.region_query((lo, hi))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))

    def test_region_query_full_range(self, fb_setup):
        fs, data, store = fb_setup
        flat = data.reshape(-1)
        r = store.region_query((float(flat.min()), float(flat.max())))
        assert r.n_results == flat.size

    def test_value_query_exact(self, fb_setup):
        fs, data, store = fb_setup
        region = ((20, 60), (10, 100))
        fs.clear_cache()
        r = store.value_query(region)
        assert r.n_results == 40 * 90
        assert np.array_equal(r.values, data.reshape(-1)[r.positions])


class TestCostMechanisms:
    def test_index_larger_than_mloc_style_index(self, fb_setup):
        """Table I mechanism: the precision-binned bitmap index is a
        large fraction of (or exceeds) the data."""
        fs, data, store = fb_setup
        sizes = store.storage_bytes()
        assert sizes["index"] > 0.3 * sizes["data"]

    def test_more_bins_bigger_index(self):
        fs = SimulatedPFS()
        data = gts_like((64, 64), seed=1)
        coarse = FastBitStore.build(fs, "/c", data, n_bins=16)
        fine = FastBitStore.build(fs, "/f", data, n_bins=256)
        assert fine.storage_bytes()["index"] > coarse.storage_bytes()["index"]

    def test_entire_index_loaded_per_query(self, fb_setup):
        """The paper's stated FastBit behaviour under cold cache: the
        whole index file is read regardless of selectivity."""
        fs, data, store = fb_setup
        index_size = store.storage_bytes()["index"]
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.5, 0.505])
        fs.clear_cache()
        r = store.region_query((lo, hi))
        assert r.stats["index_bytes"] == index_size
        assert r.stats["bytes_read"] >= index_size

    def test_value_query_also_loads_index(self, fb_setup):
        fs, data, store = fb_setup
        index_size = store.storage_bytes()["index"]
        fs.clear_cache()
        r = store.value_query(((0, 16), (0, 16)))
        assert r.stats["index_bytes"] == index_size

    def test_response_time_flat_across_selectivity(self, fb_setup):
        """Tables II/III shape: FastBit's time barely moves with
        selectivity because the index load dominates."""
        fs, data, store = fb_setup
        flat = data.reshape(-1)
        times = []
        for sel in (0.01, 0.10):
            lo, hi = np.quantile(flat, [0.45, 0.45 + sel])
            fs.clear_cache()
            times.append(store.region_query((lo, hi)).times.total)
        assert times[1] < times[0] * 3

    def test_candidate_check_bounded_by_one_data_pass(self, fb_setup):
        """Boundary-bin candidate verification reads page-merged runs;
        in the worst case that is one pass over the data file, never
        more (reads are merged, not repeated)."""
        fs, data, store = fb_setup
        edges = store.scheme.edges
        lo, hi = float(edges[10]), float(np.nextafter(edges[20], -np.inf))
        fs.clear_cache()
        r = store.region_query((lo, hi))
        sizes = store.storage_bytes()
        assert r.stats["bytes_read"] <= sizes["index"] + sizes["data"]
        # And the index itself was read exactly once.
        assert r.stats["index_bytes"] == sizes["index"]
