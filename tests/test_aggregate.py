"""Tests for aggregation push-down."""

import numpy as np
import pytest

from repro.core import Query
from repro.core.aggregate import AGGREGATE_OPS, aggregate_query


class TestScalarOps:
    def test_mean_matches_numpy(self, col_store, gts_small):
        fs, store = col_store
        region = ((32, 96), (64, 192))
        result = aggregate_query(store, Query(region=region), "mean")
        truth = gts_small[32:96, 64:192].mean()
        assert result.value == pytest.approx(truth)
        assert result.n_points == 64 * 128

    @pytest.mark.parametrize("op,npfunc", [("sum", np.sum), ("min", np.min), ("max", np.max)])
    def test_reductions(self, col_store, gts_small, op, npfunc):
        fs, store = col_store
        region = ((0, 64), (0, 64))
        result = aggregate_query(store, Query(region=region), op)
        assert result.value == pytest.approx(float(npfunc(gts_small[:64, :64])))

    def test_count_with_vc(self, col_store, gts_small):
        fs, store = col_store
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.6])
        result = aggregate_query(store, Query(value_range=(lo, hi)), "count")
        assert result.value == ((flat >= lo) & (flat <= hi)).sum()

    def test_empty_selection(self, col_store, gts_small):
        fs, store = col_store
        top = float(gts_small.max())
        result = aggregate_query(
            store, Query(value_range=(top + 1, top + 2)), "mean"
        )
        assert result.n_points == 0
        assert np.isnan(result.value)

    def test_output_forced_to_values(self, col_store):
        fs, store = col_store
        result = aggregate_query(
            store, Query(region=((0, 32), (0, 32)), output="positions"), "count"
        )
        assert result.value == 32 * 32


class TestHistogramOp:
    def test_histogram_matches_numpy(self, col_store, gts_small):
        fs, store = col_store
        region = ((0, 128), (0, 128))
        result = aggregate_query(store, Query(region=region), "histogram", n_bins=20)
        counts, edges = result.histogram
        span = (float(store.meta.edges[0]), float(store.meta.edges[-1]))
        expect, _ = np.histogram(gts_small[:128, :128], bins=20, range=span)
        assert np.array_equal(counts, expect)
        assert result.value is None

    def test_explicit_range(self, col_store, gts_small):
        fs, store = col_store
        result = aggregate_query(
            store,
            Query(region=((0, 64), (0, 64))),
            "histogram",
            n_bins=10,
            value_range=(0.0, 10.0),
        )
        counts, edges = result.histogram
        assert edges[0] == 0.0 and edges[-1] == 10.0
        assert counts.sum() <= 64 * 64


class TestPLoDAggregation:
    def test_mean_at_level2_close(self, col_store, gts_small):
        """The paper's motivating use: 3-byte precision is enough for
        mean-value analysis."""
        fs, store = col_store
        region = ((0, 128), (0, 128))
        fs.clear_cache()
        full = aggregate_query(store, Query(region=region), "mean")
        fs.clear_cache()
        lod = aggregate_query(store, Query(region=region, plod_level=2), "mean")
        rel = abs(lod.value - full.value) / abs(full.value)
        assert rel < 1e-4
        # And it reads fewer bytes.
        assert lod.stats["bytes_read"] < full.stats["bytes_read"]


class TestCommunicationSavings:
    def test_comm_smaller_than_full_gather(self, col_store, gts_small):
        fs, store = col_store
        region = ((0, 192), (0, 192))
        fs.clear_cache()
        full = store.query(Query(region=region, output="values"))
        fs.clear_cache()
        agg = aggregate_query(store, Query(region=region), "sum")
        assert agg.times.communication < full.times.communication
        assert agg.stats["gather_bytes_avoided"] > 0

    def test_unknown_op(self, col_store):
        fs, store = col_store
        with pytest.raises(ValueError, match="op must be one of"):
            aggregate_query(store, Query(region=((0, 8), (0, 8))), "median")

    def test_ops_list(self):
        assert set(AGGREGATE_OPS) == {"count", "sum", "mean", "min", "max", "histogram"}
