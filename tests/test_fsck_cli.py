"""Tests for PFS snapshots, the fsck tool, and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import MLOCWriter, mloc_col, mloc_isa
from repro.datasets import gts_like
from repro.pfs import PFSCostModel, SimulatedPFS
from repro.tools.fsck import check_store


@pytest.fixture()
def sound_store():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=5)
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    MLOCWriter(fs, "/s", cfg).write(data, variable="f")
    return fs


class TestSnapshots:
    def test_save_load_roundtrip(self, tmp_path, sound_store):
        fs = sound_store
        path = tmp_path / "snap.pfs"
        fs.save(path)
        restored = SimulatedPFS.load(path)
        assert restored.list_files() == fs.list_files()
        for name in fs.list_files():
            assert (
                restored.session().open(name).read_all()
                == fs.session().open(name).read_all()
            )
        assert restored.cost_model == fs.cost_model

    def test_load_is_cold(self, tmp_path, sound_store):
        fs = sound_store
        path = tmp_path / "snap.pfs"
        some_file = fs.list_files()[0]
        fs.session().open(some_file).read_all()  # warm the cache
        fs.save(path)
        restored = SimulatedPFS.load(path)
        s = restored.session()
        s.open(some_file).read_all()
        assert s.stats.bytes_read == restored.size(some_file)

    def test_version_check(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pfs"
        path.write_bytes(pickle.dumps({"version": 99}))
        with pytest.raises(ValueError, match="snapshot version"):
            SimulatedPFS.load(path)

    def test_cost_model_persisted(self, tmp_path):
        fs = SimulatedPFS(PFSCostModel(byte_scale=7.0))
        path = tmp_path / "s.pfs"
        fs.save(path)
        assert SimulatedPFS.load(path).cost_model.byte_scale == 7.0


class TestFsck:
    def test_sound_store_clean(self, sound_store):
        assert check_store(sound_store, "/s", "f") == []

    def test_sound_isa_store_clean(self):
        fs = SimulatedPFS()
        data = gts_like((64, 64), seed=1)
        cfg = mloc_isa(chunk_shape=(16, 16), n_bins=4, target_block_bytes=4096)
        MLOCWriter(fs, "/i", cfg).write(data, variable="f")
        assert check_store(fs, "/i", "f") == []

    def test_missing_variable(self, sound_store):
        issues = check_store(sound_store, "/s", "nope")
        assert len(issues) == 1 and "missing" in issues[0].message

    def test_corrupt_metadata(self, sound_store):
        sound_store.write_file("/s/f/meta", b"garbage")
        issues = check_store(sound_store, "/s", "f")
        assert any("unreadable" in i.message for i in issues)

    def test_truncated_data_file(self, sound_store):
        fs = sound_store
        raw = fs.session().open("/s/f/bin0003.data").read_all()
        fs.write_file("/s/f/bin0003.data", raw[: len(raw) // 2])
        issues = check_store(fs, "/s", "f")
        assert any("bin 0003" in i.location for i in issues)
        assert any(i.severity == "error" for i in issues)

    def test_flipped_bytes_detected(self, sound_store):
        fs = sound_store
        raw = bytearray(fs.session().open("/s/f/bin0002.index").read_all())
        raw[len(raw) // 2] ^= 0xFF
        fs.write_file("/s/f/bin0002.index", bytes(raw))
        issues = check_store(fs, "/s", "f")
        assert issues  # zlib CRC or coverage must catch it

    def test_missing_subfile(self, sound_store):
        sound_store.delete("/s/f/bin0001.data")
        issues = check_store(sound_store, "/s", "f")
        assert any("subfile missing" in i.message for i in issues)


class TestCLI:
    def test_demo_info_query_roundtrip(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        assert main(["demo", snap, "--size", "128", "--bins", "8"]) == 0
        assert main(["info", snap]) == 0
        out = capsys.readouterr().out
        assert "/demo/potential" in out

        assert main([
            "query", snap, "--root", "/demo", "--variable", "potential",
            "--region", "0:64,0:64", "--output", "values", "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "4096 results" in out

    def test_query_with_value_constraint(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "query", snap, "--root", "/demo", "--variable", "potential",
            "--vmin", "4.0", "--output", "positions",
        ]) == 0
        assert "results" in capsys.readouterr().out

    def test_query_aggregate(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "query", snap, "--root", "/demo", "--variable", "potential",
            "--region", "0:128,0:128", "--aggregate", "mean",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean =" in out

    def test_fsck_clean_and_corrupt(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        assert main(["fsck", snap, "--root", "/demo", "--variable", "potential"]) == 0
        capsys.readouterr()

        fs = SimulatedPFS.load(snap)
        fs.delete("/demo/potential/bin0001.data")
        fs.save(snap)
        assert main(["fsck", snap, "--root", "/demo", "--variable", "potential"]) == 1
        assert "issue(s) found" in capsys.readouterr().out

    def test_fsck_dataset_mode(self, tmp_path, capsys):
        from repro.core import MLOCDataset, mloc_col
        from repro.datasets import gts_like

        snap = str(tmp_path / "campaign.pfs")
        fs = SimulatedPFS()
        ds = MLOCDataset(
            fs, "/camp", mloc_col(chunk_shape=(16, 16), n_bins=8), n_ranks=4
        )
        for t in range(2):
            ds.append(gts_like((64, 64), seed=t), "temp", t)
        fs.save(snap)
        assert main(["fsck", snap, "--root", "/camp", "--dataset"]) == 0
        assert "OK" in capsys.readouterr().out

        # An orphaned member directory turns the check red.
        ds.write(gts_like((64, 64), seed=9), "temp", 9)
        fs.save(snap)
        assert main(["fsck", snap, "--root", "/camp", "--dataset"]) == 1
        out = capsys.readouterr().out
        assert "orphaned-member" in out

    def test_fsck_requires_variable_or_dataset(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        SimulatedPFS().save(snap)
        assert main(["fsck", snap, "--root", "/demo"]) == 2
        assert "--variable" in capsys.readouterr().out

    def test_info_empty_snapshot(self, tmp_path, capsys):
        snap = str(tmp_path / "empty.pfs")
        SimulatedPFS().save(snap)
        assert main(["info", snap]) == 1


class TestCLIRefineAndStats:
    def test_refine_progressive_session(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "refine", snap, "--root", "/demo", "--variable", "potential",
            "--vmin", "4.0", "--levels", "2,4,7",
        ]) == 0
        out = capsys.readouterr().out
        assert "level 2:" in out and "level 4:" in out and "level 7:" in out
        assert "2 refine step(s)" in out
        assert "raw bytes reused" in out

    def test_query_tol_prints_accuracy_line(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "query", snap, "--root", "/demo", "--variable", "potential",
            "--vmin", "4.0", "--tol", "1e-3",
        ]) == 0
        out = capsys.readouterr().out
        assert "tol: target 0.001 (max_rel) met" in out
        assert "provable bound" in out
        assert "raw bytes saved" in out

    def test_refine_tol_drives_progressive_ladder(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "refine", snap, "--root", "/demo", "--variable", "potential",
            "--vmin", "4.0", "--tol", "1e-4",
        ]) == 0
        out = capsys.readouterr().out
        assert "step at level" in out
        assert "tol: target 0.0001 (max_rel) met" in out

    def test_refine_sharded_session(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "refine", snap, "--root", "/demo", "--variable", "potential",
            "--vmin", "4.0", "--levels", "2,7", "--shards", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "level 2:" in out and "level 7:" in out

    def test_refine_rejects_bad_levels(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "refine", snap, "--root", "/demo", "--variable", "potential",
            "--levels", "4,2",
        ]) == 2
        assert "ascending" in capsys.readouterr().out

    def test_stats_reports_open_state(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "stats", snap, "--root", "/demo", "--variable", "potential",
            "--plan-cache", "8", "--cache-mb", "4",
            "--spec", "vmin=4.0", "--spec", "vmin=4.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "plan cache: 1 hits, 1 misses" in out
        assert "block cache:" in out
        assert "quarantine: empty" in out

    def test_stats_without_caches(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "stats", snap, "--root", "/demo", "--variable", "potential",
        ]) == 0
        out = capsys.readouterr().out
        assert "plan cache: disabled" in out
        assert "block cache: disabled" in out


class TestCLIRelayout:
    def test_relayout_roundtrip(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        capsys.readouterr()
        assert main([
            "relayout", snap, "--root", "/demo", "--variable", "potential",
            "--target-root", "/demo-vsm", "--order", "VSM",
        ]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out and "(VSM)" in out
        # The migrated store is sound and queryable.
        assert main(["fsck", snap, "--root", "/demo-vsm", "--variable", "potential"]) == 0
        capsys.readouterr()
        assert main([
            "query", snap, "--root", "/demo-vsm", "--variable", "potential",
            "--region", "0:32,0:32",
        ]) == 0
        assert "1024 results" in capsys.readouterr().out

    def test_relayout_rebinning(self, tmp_path, capsys):
        snap = str(tmp_path / "demo.pfs")
        main(["demo", snap, "--size", "128", "--bins", "8"])
        assert main([
            "relayout", snap, "--root", "/demo", "--variable", "potential",
            "--target-root", "/demo-16", "--order", "VMS", "--bins", "16",
        ]) == 0
        fs = SimulatedPFS.load(snap)
        from repro.core import MLOCStore

        migrated = MLOCStore.open(fs, "/demo-16", "potential")
        assert migrated.meta.config.n_bins == 16


class TestFsckCRC:
    def test_raw_plane_corruption_caught_by_crc(self, sound_store):
        """Low-mantissa planes are stored raw (no codec checksum); the
        per-block CRC32 in the block table must catch bit rot there."""
        fs = sound_store
        raw = bytearray(fs.session().open("/s/f/bin0004.data").read_all())
        raw[-10] ^= 0xFF  # tail of the file = raw mantissa planes
        fs.write_file("/s/f/bin0004.data", bytes(raw))
        issues = check_store(fs, "/s", "f")
        assert any("CRC mismatch" in i.message for i in issues)

    def test_index_crc(self, sound_store):
        fs = sound_store
        raw = bytearray(fs.session().open("/s/f/bin0000.index").read_all())
        raw[0] ^= 0x01
        fs.write_file("/s/f/bin0000.index", bytes(raw))
        issues = check_store(fs, "/s", "f")
        assert any(
            "CRC mismatch" in i.message or "decode failed" in i.message
            for i in issues
        )
