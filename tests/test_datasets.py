"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    gts_like,
    replicate_to,
    s3d_like,
    s3d_velocity_triplet,
)


class TestGtsLike:
    def test_shape_and_dtype(self):
        data = gts_like((64, 96), seed=0)
        assert data.shape == (64, 96)
        assert data.dtype == np.float64

    def test_deterministic(self):
        assert np.array_equal(gts_like((32, 32), seed=5), gts_like((32, 32), seed=5))
        assert not np.array_equal(gts_like((32, 32), seed=5), gts_like((32, 32), seed=6))

    def test_positive_and_bounded(self):
        data = gts_like((64, 64), seed=1)
        assert data.min() > 0.0
        assert data.max() < 10.0

    def test_spatially_smooth(self):
        """Neighbour deltas must be far smaller than the global spread —
        the property that gives Hilbert ordering its payoff."""
        data = gts_like((128, 128), seed=2)
        neighbour = np.abs(np.diff(data, axis=0)).mean()
        spread = data.max() - data.min()
        assert neighbour < 0.05 * spread

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="2-D"):
            gts_like((8, 8, 8), seed=0)


class TestS3dLike:
    def test_shape(self):
        data = s3d_like((16, 24, 32), seed=0)
        assert data.shape == (16, 24, 32)

    def test_temperature_range(self):
        data = s3d_like((32, 32, 32), seed=3)
        assert 500.0 < data.min() < data.max() < 2600.0

    def test_flame_front_gradient(self):
        """Axis 0 crosses the flame: the ends differ by ~the full
        burnt/unburnt temperature jump."""
        data = s3d_like((64, 32, 32), seed=1)
        assert data[-4:].mean() - data[:4].mean() > 800.0

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="3-D"):
            s3d_like((8, 8), seed=0)


class TestVelocityTriplet:
    def test_components_and_shapes(self):
        tri = s3d_velocity_triplet((16, 16, 16), seed=0)
        assert set(tri) == {"vu", "vv", "vw"}
        assert all(v.shape == (16, 16, 16) for v in tri.values())

    def test_positive_skewed_distribution(self):
        """Velocities must be positive and long-tailed (mean well below
        the midpoint of the range) for Table VI's error behaviour."""
        tri = s3d_velocity_triplet((24, 24, 24), seed=1)
        for v in tri.values():
            flat = v.reshape(-1)
            assert flat.min() > 0
            assert flat.mean() < 0.35 * flat.max()

    def test_components_correlated_but_distinct(self):
        tri = s3d_velocity_triplet((24, 24, 24), seed=2)
        vv, vw = tri["vv"].reshape(-1), tri["vw"].reshape(-1)
        corr = np.corrcoef(vv, vw)[0, 1]
        assert 0.3 < corr < 0.999


class TestReplicateTo:
    def test_tiles_exactly(self):
        base = gts_like((16, 16), seed=0)
        big = replicate_to(base, (48, 32))
        assert big.shape == (48, 32)
        # Tiles match the base up to the tiny decorrelation noise.
        assert np.abs(big[:16, :16] - base).max() < 1e-4

    def test_rejects_non_multiple(self):
        base = gts_like((16, 16), seed=0)
        with pytest.raises(ValueError, match="multiple"):
            replicate_to(base, (20, 32))

    def test_rejects_rank_mismatch(self):
        base = gts_like((16, 16), seed=0)
        with pytest.raises(ValueError, match="rank"):
            replicate_to(base, (32, 32, 2))

    def test_tiles_not_bit_identical(self):
        """The decorrelation noise must break exact periodicity."""
        base = gts_like((16, 16), seed=0)
        big = replicate_to(base, (32, 16))
        assert not np.array_equal(big[:16], big[16:])


class TestParticleAggregation:
    """The paper's GTS preprocessing: 1-D timesteps -> 2-D data space."""

    def test_aggregate_shape_and_order(self):
        from repro.datasets import aggregate_timesteps, gts_particle_timesteps

        steps = gts_particle_timesteps(8, 128, seed=3)
        assert len(steps) == 8 and steps[0].shape == (128,)
        grid = aggregate_timesteps(steps)
        assert grid.shape == (8, 128)
        assert np.array_equal(grid[3], steps[3])

    def test_temporal_correlation(self):
        from repro.datasets import gts_particle_timesteps

        steps = gts_particle_timesteps(4, 2048, seed=1)
        corr = np.corrcoef(steps[0], steps[1])[0, 1]
        assert corr > 0.95  # adjacent timesteps drift smoothly

    def test_aggregated_grid_is_mloc_ready(self):
        from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
        from repro.datasets import aggregate_timesteps, gts_particle_timesteps
        from repro.pfs import SimulatedPFS

        grid = aggregate_timesteps(gts_particle_timesteps(64, 64, seed=2))
        fs = SimulatedPFS()
        cfg = mloc_col(chunk_shape=(16, 16), n_bins=4, target_block_bytes=2048)
        MLOCWriter(fs, "/gts1d", cfg).write(grid, variable="f")
        store = MLOCStore.open(fs, "/gts1d", "f")
        flat = grid.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        r = store.query(Query(value_range=(lo, hi), output="positions"))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))

    def test_validation(self):
        from repro.datasets import aggregate_timesteps, gts_particle_timesteps

        with pytest.raises(ValueError):
            gts_particle_timesteps(0, 10)
        with pytest.raises(ValueError):
            aggregate_timesteps([])
        with pytest.raises(ValueError):
            aggregate_timesteps([np.zeros(3), np.zeros(4)])
