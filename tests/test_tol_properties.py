"""Property tests pinning the error-bounded retrieval contract.

Three properties, from strongest to most structural:

* **Accuracy** — for any region and tolerance, ``query(tol=t)``
  returns values whose observed max relative error against the
  full-precision answer is ``<= t``, and the claimed
  ``achieved_bound`` in stats dominates the observed error (the
  engine never claims an accuracy it cannot prove from stored
  bounds — DESIGN.md).
* **Minimality** — the per-chunk level the planner resolves is the
  *shallowest* level whose recorded bound meets ``tol``: one level
  less would exceed it.
* **Exactness escape hatch** — ``tol=0`` is bit-identical to a
  tol-less full-precision query (positions, values, and stats) across
  layouts, space-filling curves, and execution backends.

Value-constrained tol queries get a weaker, still-honest contract:
bin membership is decided on approximate values, so the *position
set* may differ from the exact answer near range edges, but every
returned value is within ``tol`` of the true value at its position.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MLOCStore, Query
from repro.plod.accuracy import relative_errors

TOLS = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6]

_SUPPRESS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def regions_256(draw):
    region = []
    for _ in range(2):
        lo = draw(st.integers(min_value=0, max_value=255))
        hi = draw(st.integers(min_value=lo + 1, max_value=256))
        region.append((lo, hi))
    return tuple(region)


@st.composite
def value_ranges(draw):
    lo_q = draw(st.floats(min_value=0.0, max_value=0.95))
    width = draw(st.floats(min_value=0.001, max_value=0.5))
    return lo_q, min(lo_q + width, 1.0)


# ----------------------------------------------------------------------
# Accuracy contract
# ----------------------------------------------------------------------
@settings(max_examples=30, **_SUPPRESS)
@given(region=regions_256(), tol=st.sampled_from(TOLS))
def test_region_query_meets_tol(col_store, region, tol):
    fs, store = col_store
    query = Query(region=region, output="values")
    full = store.query(query)
    approx = store.query(Query(region=region, output="values", tol=tol))
    assert np.array_equal(approx.positions, full.positions)
    observed = relative_errors(full.values, approx.values)
    worst = float(observed.max()) if observed.size else 0.0
    assert worst <= tol
    # The stamped claim is provable, hence conservative: it must
    # dominate what actually happened.
    assert approx.stats["tol_target"] == tol
    assert approx.stats["achieved_bound"] <= tol
    assert approx.stats["achieved_bound"] >= worst
    assert approx.stats["tol_met"] is True
    hist = approx.stats["levels_histogram"]
    assert sum(hist.values()) == approx.stats["chunks_accessed"]
    assert all(1 <= lv <= 7 for lv in hist)


@settings(max_examples=25, **_SUPPRESS)
@given(qrange=value_ranges(), tol=st.sampled_from(TOLS))
def test_value_query_values_within_tol_of_truth(col_store, gts_small, qrange, tol):
    fs, store = col_store
    flat = gts_small.reshape(-1)
    lo, hi = np.quantile(flat, [qrange[0], qrange[1]])
    approx = store.query(Query(value_range=(lo, hi), output="values", tol=tol))
    observed = relative_errors(flat[approx.positions], approx.values)
    assert (observed.size == 0) or float(observed.max()) <= tol
    assert approx.stats["achieved_bound"] <= tol


@settings(max_examples=15, **_SUPPRESS)
@given(region=regions_256(), tol=st.sampled_from(TOLS[:3]))
def test_progressive_session_converges_to_tol(col_store, region, tol):
    fs, store = col_store
    query = Query(region=region, output="values", tol=tol)
    full = store.query(Query(region=region, output="values"))
    with store.open_session(query) as session:
        steps = list(session.progressive_results())
    assert steps  # at least the initial step
    final = steps[-1]
    assert np.array_equal(final.positions, full.positions)
    observed = relative_errors(full.values, final.values)
    assert (observed.size == 0) or float(observed.max()) <= tol
    assert final.stats["tol_met"] is True
    # Each step honestly discloses whether it met the bound yet.
    for step in steps[:-1]:
        assert "achieved_bound" in step.stats


# ----------------------------------------------------------------------
# Level minimality against the stored bounds
# ----------------------------------------------------------------------
@settings(max_examples=40, **_SUPPRESS)
@given(tol=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_resolved_levels_are_minimal(col_store, tol):
    fs, store = col_store
    table = store.peb
    for metric in ("max_rel", "mean_rel"):
        levels = table.min_level_for(tol, metric)
        assert (table.bound_at(levels, metric) <= tol).all()
        deeper = levels > 1
        if deeper.any():
            shallower = np.where(deeper, levels - 1, levels)
            assert (
                table.bound_at(shallower, metric)[deeper] > tol
            ).all(), "a shallower level would already have met tol"


def test_bounds_monotone_non_increasing(col_store):
    fs, store = col_store
    table = store.peb
    for bounds in (table.max_rel, table.mean_rel):
        assert (np.diff(bounds, axis=0) <= 0).all()
        assert (bounds[-1] == 0.0).all()  # level 7 is exact
    table.validate()


# ----------------------------------------------------------------------
# tol=0 is the exact path, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture", ["col_store", "vsm_store", "col_store_3d"])
def test_tol_zero_bit_identical(fixture, request):
    fs, store = request.getfixturevalue(fixture)
    for query in [
        Query(value_range=(0.2, 0.8), output="values"),
        Query(region=((4, 40),) * len(store.meta.shape), output="values"),
    ]:
        fs.clear_cache()
        exact = store.query(query)
        fs.clear_cache()
        zero = store.query(Query(**{**query.__dict__, "tol": 0.0}))
        assert np.array_equal(zero.positions, exact.positions)
        assert np.array_equal(zero.values, exact.values)
        assert zero.stats == exact.stats


@pytest.mark.parametrize(
    "backend,kw",
    [("serial", {}), ("threads", {"n_threads": 4}), ("processes", {"workers": 2})],
)
def test_tol_zero_bit_identical_across_backends(col_store, backend, kw):
    fs, _ = col_store
    store = MLOCStore.open(fs, "/store", "field", backend=backend, **kw)
    query = Query(value_range=(0.3, 0.7), output="values")
    exact = store.query(query)
    zero = store.query(Query(value_range=(0.3, 0.7), output="values", tol=0.0))
    assert np.array_equal(zero.positions, exact.positions)
    assert np.array_equal(zero.values, exact.values)


# ----------------------------------------------------------------------
# Reading less is the point
# ----------------------------------------------------------------------
def test_loose_tol_reads_strictly_fewer_bytes(col_store):
    fs, store = col_store
    query = Query(region=((0, 256), (0, 256)), output="values")
    fs.clear_cache()
    full = store.query(query)
    fs.clear_cache()
    approx = store.query(Query(region=((0, 256), (0, 256)), output="values", tol=1e-2))
    assert approx.stats["bytes_read"] < full.stats["bytes_read"]
    assert approx.stats["tol_bytes_saved"] > 0
