"""Tests for the stopwatch utilities and argument validation helpers."""

import numpy as np
import pytest

from repro.util.timing import Stopwatch, TimerRegistry
from repro.util.validation import (
    check_dtype,
    check_positive,
    check_power_of_two,
    check_shape_chunks,
)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            sum(range(1000))
        assert sw.elapsed > first >= 0.0

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError, match="already running"):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()


class TestTimerRegistry:
    def test_autocreate_and_elapsed(self):
        reg = TimerRegistry()
        assert reg.elapsed("never") == 0.0
        with reg["io"]:
            pass
        assert reg.elapsed("io") >= 0.0
        assert "io" in reg.as_dict()

    def test_separate_timers(self):
        reg = TimerRegistry()
        with reg["a"]:
            pass
        assert reg.elapsed("b") == 0.0


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_power_of_two_accepts(self, good):
        check_power_of_two("n", good)

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 1000])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)

    def test_check_dtype(self):
        check_dtype("a", np.zeros(3), np.float64)
        with pytest.raises(TypeError):
            check_dtype("a", np.zeros(3, dtype=np.float32), np.float64)

    def test_shape_chunks_exact_tiling(self):
        check_shape_chunks((64, 128), (16, 32))
        with pytest.raises(ValueError, match="not a multiple"):
            check_shape_chunks((64, 100), (16, 32))
        with pytest.raises(ValueError, match="rank"):
            check_shape_chunks((64, 64), (16,))
        with pytest.raises(ValueError, match="positive"):
            check_shape_chunks((64,), (0,))
