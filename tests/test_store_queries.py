"""Integration tests: MLOC store queries against NumPy ground truth.

Every access pattern from Section II is checked on every MLOC variant:
value-constrained region-only, spatially-constrained value retrieval,
combined constraints, and PLoD multiresolution.  The lossless variants
must match brute-force NumPy exactly; MLOC-ISA must respect the
ISABELA error bound and may only misclassify points within the bound
of the constraint edges.
"""

import numpy as np
import pytest

from repro.core import Query


def brute_force_vc(flat, lo, hi):
    return np.flatnonzero((flat >= lo) & (flat <= hi))


def region_positions(shape, region):
    mask = np.zeros(shape, dtype=bool)
    mask[tuple(slice(lo, hi) for lo, hi in region)] = True
    return np.flatnonzero(mask.reshape(-1))


@pytest.fixture(params=["col", "iso", "isa"])
def variant(request, col_store, iso_store, isa_store):
    fs, store = {"col": col_store, "iso": iso_store, "isa": isa_store}[request.param]
    return request.param, fs, store


class TestRegionOnlyQueries:
    @pytest.mark.parametrize("quantiles", [(0.45, 0.55), (0.0, 0.3), (0.9, 1.0)])
    def test_vc_positions(self, variant, gts_small, quantiles):
        name, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, quantiles)
        fs.clear_cache()
        result = store.query(Query(value_range=(lo, hi), output="positions"))
        expect = brute_force_vc(flat, lo, hi)
        if name == "isa":
            # Lossy: misclassification only within the error bound of
            # the constraint edges.
            sym = np.setxor1d(result.positions, expect)
            if sym.size:
                bound = 0.5 * 1e-3 * np.abs(flat).max()
                near = np.minimum(np.abs(flat[sym] - lo), np.abs(flat[sym] - hi))
                assert near.max() <= bound * 1.01
        else:
            assert np.array_equal(result.positions, expect)
        assert result.values is None
        assert result.times.total > 0

    def test_narrow_vc_hits_few_bins(self, variant, gts_small):
        name, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.50, 0.51])
        result = store.query(Query(value_range=(lo, hi), output="positions"))
        assert result.stats["bins_accessed"] <= 3

    def test_positions_sorted_unique(self, variant, gts_small):
        _, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.2, 0.6])
        result = store.query(Query(value_range=(lo, hi), output="positions"))
        assert np.all(np.diff(result.positions) > 0)


class TestValueQueries:
    @pytest.mark.parametrize(
        "region", [((64, 160), (32, 200)), ((0, 32), (0, 32)), ((0, 256), (0, 256))]
    )
    def test_sc_values(self, variant, gts_small, region):
        name, fs, store = variant
        flat = gts_small.reshape(-1)
        fs.clear_cache()
        result = store.query(Query(region=region, output="values"))
        expect_pos = region_positions(gts_small.shape, region)
        assert np.array_equal(result.positions, expect_pos)
        if name == "isa":
            bound = 0.5 * 1e-3 * np.abs(flat).max()
            assert np.abs(result.values - flat[expect_pos]).max() <= bound * 1.01
        else:
            assert np.array_equal(result.values, flat[expect_pos])

    def test_unaligned_region(self, variant, gts_small):
        """Regions not aligned to chunk boundaries exercise the
        boundary-chunk filter."""
        name, fs, store = variant
        region = ((5, 39), (17, 203))
        result = store.query(Query(region=region, output="values"))
        expect_pos = region_positions(gts_small.shape, region)
        assert np.array_equal(result.positions, expect_pos)

    def test_single_point_region(self, variant, gts_small):
        name, fs, store = variant
        result = store.query(Query(region=((100, 101), (200, 201)), output="values"))
        assert result.n_results == 1
        assert result.positions[0] == 100 * 256 + 200
        if name != "isa":
            assert result.values[0] == gts_small[100, 200]


class TestCombinedQueries:
    def test_vc_and_sc(self, variant, gts_small):
        name, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        region = ((32, 160), (64, 224))
        result = store.query(
            Query(value_range=(lo, hi), region=region, output="values")
        )
        mask = np.zeros(gts_small.shape, dtype=bool)
        mask[32:160, 64:224] = True
        expect = np.flatnonzero(mask.reshape(-1) & (flat >= lo) & (flat <= hi))
        if name == "isa":
            assert abs(result.n_results - expect.size) <= 0.01 * expect.size + 50
        else:
            assert np.array_equal(result.positions, expect)
            assert np.all((result.values >= lo) & (result.values <= hi))

    def test_empty_result(self, variant, gts_small):
        _, fs, store = variant
        flat = gts_small.reshape(-1)
        result = store.query(
            Query(value_range=(flat.max() + 1, flat.max() + 2), output="positions")
        )
        # Only clamped end-bin candidates can appear; values must verify.
        assert result.n_results == 0


class TestAlignedFastPath:
    def test_aligned_bins_skip_data_files(self, col_store, gts_small):
        """Section III-D1: aligned bins under region-only output are
        answered from the index files alone."""
        fs, store = col_store
        edges = store.meta.edges
        lo, hi = float(edges[4]), float(edges[8])  # exactly aligned span
        fs.clear_cache()
        before = fs.session()
        result = store.query(Query(value_range=(lo, hi), output="positions"))
        assert result.stats["aligned_bins"] >= 3
        # The paper's claim: fewer bytes than reading the data would cost.
        data_bytes = sum(
            fs.size(store.files.data_path(b)) for b in range(4, 8)
        )
        assert result.stats["bytes_read"] < data_bytes

    def test_value_output_still_reads_data(self, col_store):
        fs, store = col_store
        edges = store.meta.edges
        lo, hi = float(edges[4]), float(edges[8])
        fs.clear_cache()
        r_pos = store.query(Query(value_range=(lo, hi), output="positions"))
        fs.clear_cache()
        r_val = store.query(Query(value_range=(lo, hi), output="values"))
        assert r_val.stats["bytes_read"] > r_pos.stats["bytes_read"]
        assert np.array_equal(r_val.positions, r_pos.positions)


class TestPLoDQueries:
    def test_error_decreases_with_level(self, col_store, gts_small):
        fs, store = col_store
        flat = gts_small.reshape(-1)
        region = ((0, 64), (0, 64))
        errs = []
        for level in (1, 2, 3, 7):
            fs.clear_cache()
            r = store.query(Query(region=region, output="values", plod_level=level))
            errs.append(np.abs(r.values - flat[r.positions]).max())
        assert errs[0] > errs[1] > errs[2] > errs[3] == 0.0

    def test_io_grows_with_level(self, col_store):
        fs, store = col_store
        region = ((0, 128), (0, 128))
        reads = []
        for level in (1, 3, 5, 7):
            fs.clear_cache()
            r = store.query(Query(region=region, output="values", plod_level=level))
            reads.append(r.stats["bytes_read"])
        assert reads[0] < reads[1] < reads[2] < reads[3]

    def test_plod_on_3d_store(self, col_store_3d, s3d_small):
        fs, store = col_store_3d
        flat = s3d_small.reshape(-1)
        region = ((0, 32), (8, 40), (16, 48))
        fs.clear_cache()
        r = store.query(Query(region=region, output="values", plod_level=2))
        rel = np.abs(r.values - flat[r.positions]) / np.abs(flat[r.positions])
        assert rel.max() < 3e-4

    def test_plod_ignored_on_full_value_store(self, iso_store, gts_small):
        """VS-order stores keep whole values; plod_level must not
        degrade results."""
        fs, store = iso_store
        flat = gts_small.reshape(-1)
        r = store.query(
            Query(region=((0, 32), (0, 32)), output="values", plod_level=2)
        )
        assert np.array_equal(r.values, flat[r.positions])


class TestComponentTimes:
    def test_all_components_reported(self, variant, gts_small):
        name, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.5])
        fs.clear_cache()
        r = store.query(Query(value_range=(lo, hi), output="values"))
        t = r.times
        assert t.io > 0
        assert t.decompression > 0
        assert t.reconstruction >= 0
        assert t.communication > 0
        assert t.total == pytest.approx(
            t.io + t.decompression + t.reconstruction + t.communication
        )

    def test_cold_vs_warm_cache(self, variant, gts_small):
        _, fs, store = variant
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.5])
        fs.clear_cache()
        cold = store.query(Query(value_range=(lo, hi), output="values"))
        warm = store.query(Query(value_range=(lo, hi), output="values"))
        assert warm.stats["bytes_read"] == 0
        assert warm.times.io < cold.times.io

    def test_result_coords_helper(self, col_store, gts_small):
        fs, store = col_store
        r = store.query(Query(region=((10, 12), (20, 23)), output="values"))
        coords = r.coords(gts_small.shape)
        assert coords.shape == (6, 2)
        assert coords[:, 0].min() == 10 and coords[:, 1].max() == 22
