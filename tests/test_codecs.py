"""Cross-codec tests: registry, roundtrips, framing, throughput attrs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    ByteCodec,
    CodecDecodeError,
    FloatCodec,
    codec_names,
    make_codec,
    register_codec,
)

LOSSLESS_FLOAT = ["zlib-float", "isobar", "fpzip-like", "null-float"]
BYTE_CODECS = ["zlib-bytes", "null-bytes"]


class TestRegistry:
    def test_all_registered(self):
        names = codec_names()
        for expected in LOSSLESS_FLOAT + BYTE_CODECS + ["isabela"]:
            assert expected in names

    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("lzma-mystery")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_codec("zlib-bytes")
            class Dup(ByteCodec):  # pragma: no cover - never instantiated
                def encode(self, data):
                    return data

                def decode(self, payload, raw_len):
                    return payload

    def test_params_forwarded(self):
        codec = make_codec("zlib-bytes", level=1)
        assert codec.level == 1

    def test_throughput_attribute_present(self):
        for name in codec_names():
            codec = make_codec(name)
            assert codec.decode_throughput > 0


@pytest.mark.parametrize("name", LOSSLESS_FLOAT)
class TestLosslessFloatCodecs:
    def test_roundtrip_smooth(self, name, rng):
        codec = make_codec(name)
        v = np.cumsum(rng.normal(0, 0.01, 10_000)) + 300.0
        assert np.array_equal(codec.decode(codec.encode(v), v.size), v)

    def test_roundtrip_random(self, name, rng):
        codec = make_codec(name)
        v = rng.uniform(-1e30, 1e30, 2_000)
        assert np.array_equal(codec.decode(codec.encode(v), v.size), v)

    def test_roundtrip_special_values(self, name):
        codec = make_codec(name)
        v = np.array([0.0, -0.0, 1e-308, -1e308, np.pi, 2.0**1023])
        out = codec.decode(codec.encode(v), v.size)
        assert np.array_equal(out.view(np.uint64), v.view(np.uint64))

    def test_empty(self, name):
        codec = make_codec(name)
        assert codec.decode(codec.encode(np.empty(0)), 0).size == 0

    def test_single_value(self, name):
        codec = make_codec(name)
        v = np.array([42.125])
        assert np.array_equal(codec.decode(codec.encode(v), 1), v)

    def test_rejects_2d(self, name):
        codec = make_codec(name)
        with pytest.raises(ValueError, match="1-D"):
            codec.encode(np.zeros((2, 2)))

    def test_compresses_smooth_data(self, name, rng):
        if name == "null-float":
            pytest.skip("identity codec")
        codec = make_codec(name)
        v = np.cumsum(rng.normal(0, 1e-4, 50_000)) + 1000.0
        assert len(codec.encode(v)) < v.nbytes

    def test_lossless_flag(self, name):
        assert make_codec(name).lossless is True


@pytest.mark.parametrize("name", BYTE_CODECS)
class TestByteCodecs:
    def test_roundtrip(self, name, rng):
        codec = make_codec(name)
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert codec.decode(codec.encode(data), len(data)) == data

    def test_compressible_payload(self, name):
        codec = make_codec(name)
        data = b"abcd" * 10_000
        payload = codec.encode(data)
        if name == "zlib-bytes":
            assert len(payload) < len(data)
        assert codec.decode(payload, len(data)) == data

    def test_incompressible_falls_back_to_raw(self, name, rng):
        codec = make_codec(name)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        payload = codec.encode(data)
        # Bounded expansion: at most one flag byte of overhead.
        assert len(payload) <= len(data) + 1
        assert codec.decode(payload, len(data)) == data

    def test_empty(self, name):
        codec = make_codec(name)
        assert codec.decode(codec.encode(b""), 0) == b""

    def test_length_mismatch_detected(self, name):
        codec = make_codec(name)
        payload = codec.encode(b"hello")
        with pytest.raises(ValueError):
            codec.decode(payload, 3)


class TestZlibByteFraming:
    def test_unknown_mode_rejected(self):
        codec = make_codec("zlib-bytes")
        with pytest.raises(ValueError, match="unknown payload mode"):
            codec.decode(b"\x07junk", 4)

    def test_level_validated(self):
        with pytest.raises(ValueError):
            make_codec("zlib-bytes", level=11)


class TestDecodeErrorNormalization:
    """Every codec raises :class:`CodecDecodeError` on bad payloads, so
    the read path can catch one exception type across the registry
    (and, being a ``ValueError``, old call sites keep working)."""

    def test_subclasses_value_error(self):
        assert issubclass(CodecDecodeError, ValueError)

    @pytest.mark.parametrize("name", LOSSLESS_FLOAT + ["isabela"])
    def test_truncated_float_payload(self, name, rng):
        codec = make_codec(name)
        v = np.cumsum(rng.normal(0, 0.01, 4096)) + 100.0
        payload = codec.encode(v)
        # Note: the message names the codec that actually failed, which
        # for delegating codecs (zlib-float -> zlib-bytes) is the inner one.
        with pytest.raises(CodecDecodeError, match="cannot decode"):
            codec.decode(payload[: len(payload) // 2], v.size)

    @pytest.mark.parametrize("name", BYTE_CODECS)
    def test_truncated_byte_payload(self, name, rng):
        codec = make_codec(name)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        payload = codec.encode(data)
        with pytest.raises(CodecDecodeError, match=name):
            codec.decode(payload[: len(payload) // 2], len(data))

    @pytest.mark.parametrize("name", ["zlib-float", "zlib-bytes", "isobar"])
    def test_garbage_payload(self, name):
        codec = make_codec(name)
        garbage = b"\x78\x9c" + b"\xa5" * 500  # zlib header, junk body
        with pytest.raises(CodecDecodeError):
            if isinstance(codec, ByteCodec):
                codec.decode(garbage, 4096)
            else:
                codec.decode(garbage, 512)

    def test_message_names_codec_and_payload_size(self):
        codec = make_codec("zlib-bytes")
        payload = codec.encode(b"hello world" * 100)
        with pytest.raises(CodecDecodeError, match=r"zlib-bytes.*\d+-byte"):
            codec.decode(payload[:5], 1100)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(LOSSLESS_FLOAT),
    values=st.lists(
        st.floats(allow_nan=False, width=64), min_size=0, max_size=300
    ),
)
def test_lossless_roundtrip_property(name, values):
    codec = make_codec(name)
    v = np.array(values, dtype=np.float64)
    out = codec.decode(codec.encode(v), v.size)
    assert np.array_equal(out.view(np.uint64), v.view(np.uint64))


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=2000))
def test_byte_roundtrip_property(data):
    for name in BYTE_CODECS:
        codec = make_codec(name)
        assert codec.decode(codec.encode(data), len(data)) == data
