"""The persisted per-chunk error-bounds (``peb``) record.

Three contracts, in dependency order:

* **Determinism** — the record is a pure function of the written data:
  byte-identical across write backends and worker counts (the builder
  rides the ordered commit loop, like the hierarchical index).
* **Rebuild equivalence** — deleting the file and letting the store's
  lazy ``peb`` property rebuild from the data subfiles reproduces the
  exact bytes, because level-7 byte-plane reassembly is exact and the
  rebuild feeds :func:`~repro.plod.bounds.compute_chunk_bounds` the
  same bin-segmented value order the writer did.
* **fsck cross-check** — the record parses under fsck, corruption is
  reported as a decode error, and a record violating the monotonicity
  invariant (bounds increasing with level) is flagged even when its
  CRC is intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_iso
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.plod import bounds as peb_bounds
from repro.plod.bounds import ErrorBoundsTable, peb_path
from repro.tools.fsck import check_store

CONFIG_KW = dict(n_bins=8, target_block_bytes=4096)


@pytest.fixture(scope="module")
def peb_field() -> np.ndarray:
    return gts_like((128, 128), seed=21)


def _write(config, data, *, backend="serial", workers=None):
    fs = SimulatedPFS()
    MLOCWriter(
        fs, "/wb", config, write_backend=backend, write_workers=workers
    ).write(data, variable="field")
    return fs


def _peb_blob(fs) -> bytes:
    return bytes(fs.session().open(peb_path("/wb/field")).read_all())


class TestPersistedBytes:
    def test_peb_file_invariant_across_write_backends(self, peb_field):
        blobs = {}
        for backend, workers in [("serial", None), ("threads", 4), ("processes", 2)]:
            fs = _write(
                mloc_col((16, 16), **CONFIG_KW),
                peb_field,
                backend=backend,
                workers=workers,
            )
            blobs[backend] = _peb_blob(fs)
        assert blobs["serial"] == blobs["threads"] == blobs["processes"]

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(level_order="VMS", curve="hilbert"),
            dict(level_order="VSM", curve="zorder"),
            dict(level_order="VMS", curve="rowmajor"),
        ],
    )
    def test_roundtrip_and_validate(self, peb_field, overrides):
        fs = _write(mloc_col((16, 16), **CONFIG_KW, **overrides), peb_field)
        blob = _peb_blob(fs)
        table = ErrorBoundsTable.from_bytes(blob)
        assert table.to_bytes() == blob
        table.validate()  # monotone, level-7 zero, mean <= max
        assert table.n_chunks == 64

    def test_lazy_rebuild_matches_persisted(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        persisted = _peb_blob(fs)
        store = MLOCStore.open(fs, "/wb", "field")
        assert store.peb.to_bytes() == persisted
        # Delete the record: the lazy property must rebuild identical
        # bytes from the flat bin subfiles.
        fs.delete(peb_path("/wb/field"))
        fresh = MLOCStore.open(fs, "/wb", "field")
        assert fresh.peb.to_bytes() == persisted
        assert peb_bounds.build_from_store(fresh).to_bytes() == persisted

    def test_non_plod_layout_writes_no_record(self, peb_field):
        """VS layouts keep no byte planes, so there are no per-level
        bounds to record — and tol queries on them must refuse rather
        than guess."""
        fs = _write(mloc_iso((16, 16), **CONFIG_KW), peb_field)
        assert not fs.exists(peb_path("/wb/field"))
        store = MLOCStore.open(fs, "/wb", "field")
        with pytest.raises(ValueError, match="PLoD"):
            store.query(Query(value_range=(0.2, 0.8), tol=1e-3))

    def test_opt_out(self, peb_field):
        fs = SimulatedPFS()
        report = MLOCWriter(
            fs, "/wb", mloc_col((16, 16), **CONFIG_KW), build_peb=False
        ).write(peb_field, variable="field")
        assert report.peb_bytes == 0
        assert not fs.exists(peb_path("/wb/field"))


class TestBoundsSemantics:
    def test_min_level_for_monotone_in_tol(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        table = ErrorBoundsTable.from_bytes(_peb_blob(fs))
        prev = None
        for tol in (0.0, 1e-8, 1e-6, 1e-4, 1e-2, 1.0):
            levels = table.min_level_for(tol)
            assert levels.min() >= 1 and levels.max() <= 7
            # Recorded bound at the resolved level actually meets tol.
            assert (table.bound_at(levels) <= tol).all()
            if prev is not None:
                assert (levels <= prev).all()  # looser tol, shallower
            prev = levels
        assert (table.min_level_for(0.0) == 7).all()

    def test_mean_metric_resolves_no_deeper_than_max(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        table = ErrorBoundsTable.from_bytes(_peb_blob(fs))
        for tol in (1e-6, 1e-3):
            assert (
                table.min_level_for(tol, "mean_rel")
                <= table.min_level_for(tol, "max_rel")
            ).all()


class TestFsckCrossCheck:
    def test_clean_store_has_no_issues(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        assert check_store(fs, "/wb", "field") == []

    def test_corrupt_record_is_a_decode_error(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        blob = bytearray(_peb_blob(fs))
        blob[len(blob) // 2] ^= 0xFF
        fs.write_file(peb_path("/wb/field"), bytes(blob))
        issues = [i for i in check_store(fs, "/wb", "field") if i.location == "peb"]
        assert len(issues) == 1
        assert issues[0].kind == "decode-error"

    def test_non_monotone_bounds_are_flagged(self, peb_field):
        """A CRC-intact record whose bounds *increase* with level must
        fail the cross-check: monotonicity is what lets the planner
        trust ``min_level_for``."""
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        table = ErrorBoundsTable.from_bytes(_peb_blob(fs))
        bad_max = table.max_rel.copy()
        bad_max[3, 0] = bad_max[2, 0] + 1.0  # deeper level, larger bound
        fs.write_file(
            peb_path("/wb/field"),
            ErrorBoundsTable(bad_max, np.minimum(table.mean_rel, bad_max)).to_bytes(),
        )
        issues = [i for i in check_store(fs, "/wb", "field") if i.location == "peb"]
        assert len(issues) == 1
        assert "consistency" in issues[0].message

    def test_geometry_mismatch_is_flagged(self, peb_field):
        fs = _write(mloc_col((16, 16), **CONFIG_KW), peb_field)
        small = ErrorBoundsTable(np.zeros((7, 3)), np.zeros((7, 3)))
        fs.write_file(peb_path("/wb/field"), small.to_bytes())
        issues = [i for i in check_store(fs, "/wb", "field") if i.location == "peb"]
        assert len(issues) == 1
        assert "chunks" in issues[0].message
