"""Decoded-block LRU cache: accounting, eviction, thrash, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import BlockCache, SimulatedPFS


def _arr(n_bytes: int) -> np.ndarray:
    return np.zeros(n_bytes, dtype=np.uint8)


class TestBlockCacheUnit:
    def test_hit_miss_accounting(self):
        cache = BlockCache(1024)
        key = (0, "/b/0", 0)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, _arr(100))
        got = cache.get(key)
        assert isinstance(got, np.ndarray) and got.nbytes == 100
        assert cache.stats.hits == 1
        assert cache.stats.hit_bytes == 100
        assert cache.stats.insertions == 1
        assert cache.stats.current_bytes == 100
        assert len(cache) == 1 and key in cache

    def test_byte_budget_eviction_is_lru_order(self):
        cache = BlockCache(300)
        for i in range(3):
            cache.put((0, "/b", i), _arr(100))
        # Touch key 0 so key 1 becomes the least recently used.
        cache.get((0, "/b", 0))
        cache.put((0, "/b", 3), _arr(100))
        assert cache.stats.evictions == 1
        assert (0, "/b", 1) not in cache
        assert (0, "/b", 0) in cache and (0, "/b", 2) in cache
        assert cache.stats.current_bytes == 300
        # LRU order is oldest-first.
        assert cache.keys()[0] == (0, "/b", 2)

    def test_oversized_entry_rejected(self):
        cache = BlockCache(100)
        cache.put((0, "/b", 0), _arr(50))
        assert not cache.put((0, "/b", 1), _arr(200))
        # The resident entry is untouched: rejecting the oversized block
        # must not thrash the rest of the cache.
        assert (0, "/b", 0) in cache
        assert cache.stats.current_bytes == 50

    def test_replacing_entry_updates_bytes(self):
        cache = BlockCache(1000)
        cache.put((0, "/b", 0), _arr(100))
        cache.put((0, "/b", 0), _arr(300))
        assert cache.stats.current_bytes == 300
        assert len(cache) == 1

    def test_invalidate_by_prefix_and_all(self):
        cache = BlockCache(1000)
        cache.put((0, "/a/data", 0), _arr(10))
        cache.put((0, "/a/index", 0), _arr(10))
        cache.put((0, "/b/data", 0), _arr(10))
        assert cache.invalidate("/a/") == 2
        assert len(cache) == 1 and cache.stats.current_bytes == 10
        assert cache.invalidate() == 1
        assert len(cache) == 0 and cache.stats.current_bytes == 0

    def test_invalidate_spares_pinned_keys(self):
        # Regression: prefix invalidation used to drop pinned entries,
        # yanking verified planes out from under refinement sessions.
        cache = BlockCache(1000)
        cache.put((0, "/a/data", 0), _arr(10))
        cache.put((0, "/a/data", 64), _arr(10))
        cache.pin((0, "/a/data", 0), owner="session")
        assert cache.invalidate("/a/") == 1
        assert (0, "/a/data", 0) in cache
        assert (0, "/a/data", 64) not in cache
        assert cache.pinned_keys() == [(0, "/a/data", 0)]
        assert cache.stats.current_bytes == 10
        # Full invalidation spares pins too...
        assert cache.invalidate() == 0
        assert (0, "/a/data", 0) in cache
        # ...until the owner releases, after which the entry is fair game.
        cache.release("session")
        assert cache.invalidate() == 1
        assert len(cache) == 0 and cache.stats.current_bytes == 0

    def test_drop_evicts_one_unpinned_entry(self):
        cache = BlockCache(1000)
        cache.put((0, "/a", 0), _arr(10))
        cache.put((0, "/a", 64), _arr(20))
        cache.pin((0, "/a", 64), owner="s")
        assert cache.drop((0, "/a", 0))
        assert (0, "/a", 0) not in cache
        assert cache.stats.current_bytes == 20
        assert cache.stats.evictions == 1
        # Pinned and absent keys refuse.
        assert not cache.drop((0, "/a", 64))
        assert not cache.drop((0, "/ghost", 0))
        assert (0, "/a", 64) in cache
        assert cache.stats.evictions == 1

    def test_entry_nbytes_probe_is_stat_free(self):
        cache = BlockCache(1000)
        cache.put((0, "/a", 0), _arr(42))
        hits0, misses0 = cache.stats.hits, cache.stats.misses
        assert cache.entry_nbytes((0, "/a", 0)) == 42
        assert cache.entry_nbytes((0, "/ghost", 0)) is None
        assert (cache.stats.hits, cache.stats.misses) == (hits0, misses0)

    def test_rejects_bad_budget_and_value(self):
        with pytest.raises(ValueError):
            BlockCache(0)
        cache = BlockCache(10)
        with pytest.raises(TypeError):
            cache.put((0, "/b", 0), object())


def _write(fs, root, data, **config_overrides):
    config = mloc_col(
        chunk_shape=(32, 32),
        n_bins=8,
        target_block_bytes=8 * 1024,
        **config_overrides,
    )
    MLOCWriter(fs, root, config).write(data, variable="field")


class TestStoreCache:
    def _fs_data(self):
        fs = SimulatedPFS()
        data = gts_like((128, 128), seed=3)
        _write(fs, "/store", data)
        return fs, data

    def test_repeat_query_hits_and_skips_io_and_decode(self):
        fs, _ = self._fs_data()
        store = MLOCStore.open(fs, "/store", "field", cache_bytes=64 << 20)
        q = Query(value_range=(0.0, 5.0), region=((0, 96), (16, 128)), output="values")
        fs.clear_cache()
        cold = store.query(q)
        fs.clear_cache()
        warm = store.query(q)
        assert cold.stats["cache_misses"] > 0
        assert warm.stats["cache_hits"] == (
            cold.stats["cache_hits"] + cold.stats["cache_misses"]
        )
        assert warm.stats["cache_misses"] == 0
        # Warm hits skip both the simulated I/O and the modeled decode.
        assert warm.stats["bytes_read"] == 0
        assert warm.stats["files_opened"] == 0
        assert warm.times.io < cold.times.io
        assert warm.times.decompression == 0.0
        # And the answers are identical.
        assert np.array_equal(cold.positions, warm.positions)
        assert np.array_equal(cold.values, warm.values)

    def test_one_block_cache_thrash_is_still_correct(self):
        fs, _ = self._fs_data()
        uncached = MLOCStore.open(fs, "/store", "field")
        # Budget of one decoded block: almost everything evicts, but
        # results must be unchanged.
        thrashed = MLOCStore.open(fs, "/store", "field", cache_bytes=8 * 1024)
        q = Query(value_range=(0.0, 5.0), output="values")
        fs.clear_cache()
        expected = uncached.query(q)
        for _ in range(2):
            fs.clear_cache()
            got = thrashed.query(q)
            assert np.array_equal(expected.positions, got.positions)
            assert np.array_equal(expected.values, got.values)
        assert thrashed.cache.stats.current_bytes <= 8 * 1024
        assert thrashed.cache.stats.evictions > 0

    def test_rewritten_store_does_not_serve_stale_blocks(self):
        fs = SimulatedPFS()
        data_a = gts_like((128, 128), seed=3)
        _write(fs, "/store", data_a)
        cache = BlockCache(64 << 20)
        store_a = MLOCStore.open(fs, "/store", "field", cache=cache)
        q = Query(region=((0, 64), (0, 64)), output="values")
        a = store_a.query(q)
        assert cache.stats.insertions > 0

        # Rewrite the same paths with different data, reopen, share the
        # same cache object: the new generation must miss everything.
        data_b = gts_like((128, 128), seed=99)
        for path in [p for p in fs.list_files() if p.startswith("/store/")]:
            fs.delete(path)
        _write(fs, "/store", data_b)
        store_b = MLOCStore.open(fs, "/store", "field", cache=cache)
        assert store_b.executor.generation != store_a.executor.generation
        b = store_b.query(q)
        assert b.stats["cache_hits"] == 0
        expected = MLOCStore.open(fs, "/store", "field").query(q)
        assert np.array_equal(b.positions, expected.positions)
        assert np.array_equal(b.values, expected.values)

    def test_cache_disabled_by_default(self):
        fs, _ = self._fs_data()
        store = MLOCStore.open(fs, "/store", "field")
        assert store.cache is None
        result = store.query(Query(region=((0, 32), (0, 32)), output="values"))
        assert result.stats["cache_hits"] == 0
