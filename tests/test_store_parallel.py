"""Tests for parallel execution knobs: rank counts, schedulers,
subset-based multiresolution, and store opening."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def hier_store():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=9)
    cfg = mloc_col((16, 16), n_bins=8, curve="hierarchical", target_block_bytes=4096)
    MLOCWriter(fs, "/h", cfg).write(data, variable="f")
    return fs, data, MLOCStore.open(fs, "/h", "f", n_ranks=4)


class TestRankCounts:
    @pytest.mark.parametrize("n_ranks", [1, 2, 8, 16])
    def test_results_independent_of_ranks(self, col_store, gts_small, n_ranks):
        fs, store = col_store
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        ranked = store.with_ranks(n_ranks)
        fs.clear_cache()
        result = ranked.query(Query(value_range=(lo, hi), output="values"))
        expect = np.flatnonzero((flat >= lo) & (flat <= hi))
        assert np.array_equal(result.positions, expect)
        assert result.stats["n_ranks"] == n_ranks

    def test_parallel_io_not_worse_than_serial(self, col_store, gts_small):
        fs, store = col_store
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.1, 0.9])
        fs.clear_cache()
        serial = store.with_ranks(1).query(Query(value_range=(lo, hi), output="values"))
        fs.clear_cache()
        parallel = store.with_ranks(8).query(
            Query(value_range=(lo, hi), output="values")
        )
        assert parallel.times.io <= serial.times.io * 1.05


class TestSchedulers:
    def test_round_robin_gives_same_answers(self, gts_small):
        fs = SimulatedPFS()
        cfg = mloc_col((32, 32), n_bins=8, target_block_bytes=8192)
        MLOCWriter(fs, "/s", cfg).write(gts_small, variable="f")
        col = MLOCStore.open(fs, "/s", "f", n_ranks=4, scheduler="column")
        rr = MLOCStore.open(fs, "/s", "f", n_ranks=4, scheduler="round-robin")
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.7])
        q = Query(value_range=(lo, hi), output="positions")
        fs.clear_cache()
        a = col.query(q)
        fs.clear_cache()
        b = rr.query(q)
        assert np.array_equal(a.positions, b.positions)

    def test_column_order_opens_fewer_files(self, gts_small):
        """The paper's scheduling claim (Section III-D): column order
        minimizes the files each process touches."""
        fs = SimulatedPFS()
        cfg = mloc_col((32, 32), n_bins=8, target_block_bytes=8192)
        MLOCWriter(fs, "/s2", cfg).write(gts_small, variable="f")
        flat = gts_small.reshape(-1)
        lo, hi = np.quantile(flat, [0.05, 0.95])
        col = MLOCStore.open(fs, "/s2", "f", n_ranks=4, scheduler="column")
        rr = MLOCStore.open(fs, "/s2", "f", n_ranks=4, scheduler="round-robin")
        q = Query(value_range=(lo, hi), output="values")
        fs.clear_cache()
        a = col.query(q)
        fs.clear_cache()
        b = rr.query(q)
        assert a.stats["files_opened"] < b.stats["files_opened"]

    def test_unknown_scheduler(self, col_store):
        fs, store = col_store
        with pytest.raises(ValueError, match="scheduler"):
            MLOCStore(fs, store.root, store.meta, scheduler="random")


class TestSubsetMultiresolution:
    def test_lower_resolution_reads_less(self, hier_store):
        fs, data, store = hier_store
        counts = []
        results = []
        for level in (0, 1, 2, None):
            fs.clear_cache()
            r = store.query(Query(resolution_level=level, output="values"))
            counts.append(r.stats["bytes_read"])
            results.append(r.n_results)
        assert counts[0] < counts[1] < counts[2] < counts[3]
        assert results[3] == data.size

    def test_subset_is_spatially_uniform(self, hier_store):
        fs, data, store = hier_store
        r = store.query(Query(resolution_level=1, output="values"))
        coords = r.coords(data.shape)
        # Levels 0..1 of an 8x8 chunk grid = the 2x2 chunk lattice:
        # chunks at chunk-coords multiples of 4 -> element coords in
        # [0,16) and [64,80) per axis.
        for axis in range(2):
            blocks = np.unique(coords[:, axis] // 16)
            assert set(blocks.tolist()) == {0, 4}

    def test_values_exact_within_subset(self, hier_store):
        fs, data, store = hier_store
        r = store.query(Query(resolution_level=1, output="values"))
        assert np.array_equal(r.values, data.reshape(-1)[r.positions])

    def test_resolution_with_sc(self, hier_store):
        fs, data, store = hier_store
        r = store.query(
            Query(region=((0, 64), (0, 64)), resolution_level=1, output="values")
        )
        coords = r.coords(data.shape)
        assert coords.max() < 64


class TestStoreOpen:
    def test_open_missing_variable(self, col_store):
        fs, store = col_store
        with pytest.raises(FileNotFoundError):
            MLOCStore.open(fs, "/store", "nope")

    def test_open_exposes_metadata(self, col_store, gts_small):
        fs, store = col_store
        assert store.shape == gts_small.shape
        assert store.n_elements == gts_small.size
        assert store.variable == "field"

    def test_storage_report(self, col_store):
        fs, store = col_store
        report = store.storage_report()
        assert report.data_bytes > 0
        assert report.index_bytes > 0
        assert report.meta_bytes > 0
        assert report.total_bytes == (
            report.data_bytes + report.index_bytes + report.meta_bytes
        )
