"""Unit tests for executor internals (cell geometry, block covering)."""

import numpy as np
import pytest

from repro.compression import make_codec
from repro.core.config import MLOCConfig, mloc_col, mloc_iso
from repro.core.executor import (
    ASSEMBLY_THROUGHPUT,
    INDEX_DECODE_THROUGHPUT,
    RankOutput,
    _cell_sizes,
    _covering_rows,
)
from repro.pfs import SimulatedPFS
from repro.util.timing import TimerRegistry


class TestCellSizes:
    def test_vs_order_is_counts_times_8(self):
        cfg = mloc_iso(chunk_shape=(4,))
        counts = np.array([3, 0, 5], dtype=np.uint32)
        assert _cell_sizes(cfg, counts, 3).tolist() == [24, 0, 40]

    def test_vms_group_major(self):
        cfg = mloc_col(chunk_shape=(4,))  # VMS
        counts = np.array([2, 1], dtype=np.uint32)
        sizes = _cell_sizes(cfg, counts, 2)
        # group 0 (2 bytes/elem) over both chunks, then groups 1..6.
        assert sizes.tolist() == [4, 2] + [2, 1] * 6

    def test_vsm_chunk_major(self):
        cfg = mloc_col(chunk_shape=(4,), level_order="VSM")
        counts = np.array([2, 1], dtype=np.uint32)
        sizes = _cell_sizes(cfg, counts, 2)
        # chunk 0's seven groups, then chunk 1's.
        assert sizes.tolist() == [4, 2, 2, 2, 2, 2, 2] + [2, 1, 1, 1, 1, 1, 1]

    def test_total_bytes_invariant(self):
        cfg_col = mloc_col(chunk_shape=(4,))
        cfg_vsm = mloc_col(chunk_shape=(4,), level_order="VSM")
        counts = np.array([7, 0, 13, 2], dtype=np.uint32)
        total = int(counts.sum()) * 8
        assert int(_cell_sizes(cfg_col, counts, 4).sum()) == total
        assert int(_cell_sizes(cfg_vsm, counts, 4).sum()) == total


class TestCoveringRows:
    def test_basic_lookup(self):
        row_starts = np.array([0, 10, 20, 30])
        assert _covering_rows(row_starts, np.array([0])) == [0]
        assert _covering_rows(row_starts, np.array([9, 10])) == [0, 1]
        assert _covering_rows(row_starts, np.array([35])) == [3]

    def test_deduplicates_and_sorts(self):
        row_starts = np.array([0, 100])
        cells = np.array([150, 5, 120, 7])
        assert _covering_rows(row_starts, cells) == [0, 1]

    def test_empty(self):
        assert _covering_rows(np.array([0, 10]), np.array([], dtype=np.int64)) == []
        assert _covering_rows(np.array([], dtype=np.int64), np.array([1])) == []


class TestModeledDecompression:
    def _rank(self, data_bytes, index_bytes):
        return RankOutput(
            positions=np.empty(0, dtype=np.int64),
            values=None,
            timers=TimerRegistry(),
            session=SimulatedPFS().session(),
            data_raw_bytes=data_bytes,
            index_raw_bytes=index_bytes,
        )

    def test_linear_in_bytes_and_scale(self):
        codec = make_codec("zlib-bytes")
        r = self._rank(data_bytes=1_000_000, index_bytes=0)
        t1 = r.modeled_decompression(codec, byte_scale=1.0)
        t2 = r.modeled_decompression(codec, byte_scale=8.0)
        expected = 1_000_000 / codec.decode_throughput + 1_000_000 / ASSEMBLY_THROUGHPUT
        assert t1 == pytest.approx(expected)
        assert t2 == pytest.approx(8 * t1)

    def test_index_component(self):
        codec = make_codec("zlib-bytes")
        r = self._rank(data_bytes=0, index_bytes=2_400_000)
        assert r.modeled_decompression(codec, 1.0) == pytest.approx(
            2_400_000 / INDEX_DECODE_THROUGHPUT
        )

    def test_slow_codec_costs_more(self):
        fast = make_codec("isobar")
        slow = make_codec("isabela")
        r = self._rank(data_bytes=10_000_000, index_bytes=0)
        assert r.modeled_decompression(slow, 1.0) > r.modeled_decompression(fast, 1.0)
