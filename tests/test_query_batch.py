"""``MLOCStore.query_many``: per-query answers, block dedup, aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchResult, MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def fs():
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(32, 32), n_bins=8, target_block_bytes=8 * 1024)
    MLOCWriter(fs, "/store", config).write(gts_like((128, 128), seed=11), variable="field")
    return fs


OVERLAPPING = [
    Query(region=((0, 96), (0, 96)), output="values"),
    Query(region=((16, 112), (0, 96)), output="values"),
    Query(region=((0, 96), (16, 112)), output="values"),
]


def test_batch_matches_individual_queries(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING)
    assert isinstance(batch, BatchResult)
    assert len(batch) == len(OVERLAPPING)
    for i, query in enumerate(OVERLAPPING):
        fs.clear_cache()
        expected = MLOCStore.open(fs, "/store", "field").query(query)
        assert np.array_equal(batch[i].positions, expected.positions)
        assert np.array_equal(batch[i].values, expected.values)


def test_batch_decodes_shared_blocks_once(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING)
    # The boxes overlap heavily: later queries must hit blocks the
    # first query already fetched, even with no persistent cache.
    assert store.cache is None
    assert batch.stats["cache_hits"] > 0
    assert batch.stats["blocks_decoded"] < (
        batch.stats["cache_hits"] + batch.stats["cache_misses"]
    )
    # First query pays cold; a repeat of query 0 inside the batch
    # would be all hits — check the third query benefits already.
    assert batch[2].stats["cache_hits"] > 0


def test_batch_cheaper_than_cold_singles(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING)
    cold_io = cold_dec = 0.0
    for query in OVERLAPPING:
        fs.clear_cache()
        r = MLOCStore.open(fs, "/store", "field").query(query)
        cold_io += r.times.io
        cold_dec += r.times.decompression
    assert batch.times.io < cold_io
    assert batch.times.decompression < cold_dec


def test_batch_aggregate_times_are_sums(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING)
    for component in ("io", "decompression", "reconstruction", "communication"):
        assert getattr(batch.times, component) == pytest.approx(
            sum(getattr(r.times, component) for r in batch)
        )
    assert batch.stats["n_queries"] == len(OVERLAPPING)
    assert batch.stats["n_results"] == sum(r.n_results for r in batch)


def test_batch_aggregates_seeks(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING)
    assert batch.stats["seeks"] == sum(r.stats["seeks"] for r in batch)
    assert batch.stats["seeks"] > 0  # real reads always seek at least once


def test_batch_aggregates_plan_cache_counters(fs):
    meta_store = MLOCStore.open(fs, "/store", "field")
    store = MLOCStore(fs, meta_store.root, meta_store.meta, plan_cache=8)
    fs.clear_cache()
    batch = store.query_many(OVERLAPPING + [OVERLAPPING[0]])
    # The repeated first query is the only plan-cache hit.
    assert batch.stats["plan_cache_hits"] == 1
    assert batch.stats["plan_cache_misses"] == len(OVERLAPPING)
    assert np.array_equal(batch[0].positions, batch[3].positions)


def test_batch_with_persistent_cache_reports_cache_stats(fs):
    store = MLOCStore.open(fs, "/store", "field", cache_bytes=32 << 20)
    fs.clear_cache()
    first = store.query_many(OVERLAPPING)
    assert "cache" in first.stats
    fs.clear_cache()
    again = store.query_many(OVERLAPPING)
    # Second batch is served entirely from the store-level LRU.
    assert again.stats["cache_misses"] == 0
    assert again.stats["bytes_read"] == 0
    for a, b in zip(first, again):
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.values, b.values)


def test_empty_and_single_batches(fs):
    store = MLOCStore.open(fs, "/store", "field")
    empty = store.query_many([])
    assert len(empty) == 0 and empty.times.total == 0.0
    # Every aggregate counter of an empty batch is exactly zero (or an
    # empty collection, for list-valued stats like partial_chunks).
    for key, value in empty.stats.items():
        assert not value, f"empty batch stat {key!r} should be empty, got {value}"
    single = store.query_many([OVERLAPPING[0]])
    assert len(single) == 1
    assert list(iter(single))[0] is single[0]


def test_mixed_output_batch(fs):
    store = MLOCStore.open(fs, "/store", "field")
    fs.clear_cache()
    batch = store.query_many(
        [
            Query(value_range=(0.0, 5.0), output="positions"),
            Query(value_range=(0.0, 5.0), output="values"),
        ]
    )
    assert batch[0].values is None
    assert batch[1].values is not None
    assert np.array_equal(batch[0].positions, batch[1].positions)
