"""Tests for the relayout migration tool."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_isa, mloc_iso
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.tools import check_store, relayout


@pytest.fixture()
def source():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=6)
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    MLOCWriter(fs, "/src", cfg).write(data, variable="f")
    return fs, data


class TestRelayout:
    def test_vms_to_vsm_identical_answers(self, source):
        fs, data = source
        new_cfg = mloc_col(
            chunk_shape=(16, 16), n_bins=8, level_order="VSM", target_block_bytes=4096
        )
        report = relayout(fs, "/src", "f", "/dst", new_cfg)
        assert not report.approximate
        assert report.source_order == "VMS" and report.target_order == "VSM"
        migrated = MLOCStore.open(fs, "/dst", "f")
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.3, 0.6])
        r = migrated.query(Query(value_range=(lo, hi), output="values"))
        expect = np.flatnonzero((flat >= lo) & (flat <= hi))
        assert np.array_equal(r.positions, expect)
        assert np.array_equal(r.values, flat[expect])

    def test_codec_migration(self, source):
        fs, data = source
        new_cfg = mloc_iso(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
        relayout(fs, "/src", "f", "/iso", new_cfg)
        migrated = MLOCStore.open(fs, "/iso", "f")
        r = migrated.query(Query(region=((0, 64), (0, 64))))
        assert np.array_equal(r.values, data[:64, :64].reshape(-1))

    def test_rechunking(self, source):
        fs, data = source
        new_cfg = mloc_col(chunk_shape=(32, 32), n_bins=4, target_block_bytes=4096)
        relayout(fs, "/src", "f", "/rechunk", new_cfg)
        migrated = MLOCStore.open(fs, "/rechunk", "f")
        assert migrated.grid.chunk_shape == (32, 32)
        r = migrated.query(Query(region=((10, 50), (20, 90))))
        assert np.array_equal(r.values, data[10:50, 20:90].reshape(-1))

    def test_migrated_store_passes_fsck(self, source):
        fs, data = source
        new_cfg = mloc_col(
            chunk_shape=(16, 16), n_bins=12, level_order="VSM", target_block_bytes=4096
        )
        relayout(fs, "/src", "f", "/checked", new_cfg)
        assert check_store(fs, "/checked", "f") == []

    def test_lossy_source_flagged(self):
        fs = SimulatedPFS()
        data = gts_like((64, 64), seed=1)
        cfg = mloc_isa(chunk_shape=(16, 16), n_bins=4, target_block_bytes=4096)
        MLOCWriter(fs, "/lossy", cfg).write(data, variable="f")
        report = relayout(
            fs,
            "/lossy",
            "f",
            "/from-lossy",
            mloc_col(chunk_shape=(16, 16), n_bins=4, target_block_bytes=4096),
        )
        assert report.approximate
        migrated = MLOCStore.open(fs, "/from-lossy", "f")
        r = migrated.query(Query(region=((0, 64), (0, 64))))
        bound = 0.5 * 1e-3 * np.abs(data).max()
        assert np.abs(r.values - data.reshape(-1)).max() <= bound * 1.01

    def test_same_root_rejected(self, source):
        fs, data = source
        with pytest.raises(ValueError, match="must differ"):
            relayout(fs, "/src", "f", "/src", mloc_col(chunk_shape=(16, 16)))

    def test_source_untouched(self, source):
        fs, data = source
        before = {p: fs.size(p) for p in fs.list_files("/src/")}
        relayout(
            fs,
            "/src",
            "f",
            "/dst2",
            mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096),
        )
        after = {p: fs.size(p) for p in fs.list_files("/src/")}
        assert before == after
