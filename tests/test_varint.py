"""Unit and property tests for the vectorized varint codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.varint import varint_decode_array, varint_encode_array


class TestVarintBasics:
    def test_empty(self):
        assert varint_encode_array(np.empty(0, dtype=np.uint64)) == b""
        out = varint_decode_array(b"")
        assert out.size == 0

    def test_zero(self):
        assert varint_encode_array(np.array([0], dtype=np.uint64)) == b"\x00"

    def test_single_byte_boundary(self):
        # 127 fits in one byte; 128 needs two.
        assert len(varint_encode_array(np.array([127], dtype=np.uint64))) == 1
        assert len(varint_encode_array(np.array([128], dtype=np.uint64))) == 2

    def test_known_encoding(self):
        # LEB128 of 300 = 0xAC 0x02.
        assert varint_encode_array(np.array([300], dtype=np.uint64)) == b"\xac\x02"

    def test_max_uint64(self):
        v = np.array([2**64 - 1], dtype=np.uint64)
        payload = varint_encode_array(v)
        assert len(payload) == 10
        assert np.array_equal(varint_decode_array(payload, 1), v)

    def test_mixed_magnitudes(self):
        v = np.array([0, 1, 127, 128, 16383, 16384, 2**32, 2**63], dtype=np.uint64)
        assert np.array_equal(varint_decode_array(varint_encode_array(v), v.size), v)

    def test_order_preserved(self):
        v = np.arange(1000, dtype=np.uint64) * 37
        assert np.array_equal(varint_decode_array(varint_encode_array(v)), v)


class TestVarintErrors:
    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            varint_encode_array(np.array([-1], dtype=np.int64))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            varint_encode_array(np.zeros((2, 2), dtype=np.uint64))

    def test_truncated_stream(self):
        payload = varint_encode_array(np.array([300], dtype=np.uint64))
        with pytest.raises(ValueError, match="truncated"):
            varint_decode_array(payload[:1])

    def test_count_mismatch(self):
        payload = varint_encode_array(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(ValueError, match="expected 2 values"):
            varint_decode_array(payload, 2)

    def test_empty_with_nonzero_count(self):
        with pytest.raises(ValueError, match="expected 5"):
            varint_decode_array(b"", 5)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=200)
)
def test_roundtrip_property(values):
    v = np.array(values, dtype=np.uint64)
    assert np.array_equal(varint_decode_array(varint_encode_array(v), v.size), v)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=100)
)
def test_small_values_one_byte_each(values):
    payload = varint_encode_array(np.array(values, dtype=np.uint64))
    assert len(payload) == len(values)
