"""Tests for the level-order advisor."""

import numpy as np
import pytest

from repro.core.advisor import (
    AdvisorReport,
    QueryClass,
    WorkloadProfile,
    recommend_level_order,
)
from repro.core.config import mloc_col
from repro.datasets import s3d_like
from repro.pfs import PFSCostModel


class TestQueryClass:
    def test_validation(self):
        with pytest.raises(ValueError, match="pattern"):
            QueryClass("scan")
        with pytest.raises(ValueError, match="selectivity"):
            QueryClass("region", selectivity=0.0)

    def test_defaults(self):
        q = QueryClass("value")
        assert q.plod_level == 7 and q.selectivity == 0.01


class TestWorkloadProfile:
    def test_presets(self):
        for profile in (
            WorkloadProfile.fusion_like(),
            WorkloadProfile.climate_like(),
            WorkloadProfile.analytics_like(),
        ):
            assert sum(w for _, w in profile.classes) > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkloadProfile(())
        with pytest.raises(ValueError, match="positive"):
            WorkloadProfile(((QueryClass("region"), 0.0),))


class TestRecommendation:
    @pytest.fixture(scope="class")
    def sample(self):
        return s3d_like((64, 64, 64), seed=51)

    @pytest.fixture(scope="class")
    def base_config(self):
        return mloc_col(
            chunk_shape=(16, 16, 16), n_bins=8, target_block_bytes=4096
        )

    def test_report_structure(self, sample, base_config):
        report = recommend_level_order(
            sample,
            WorkloadProfile.climate_like(),
            base_config,
            n_queries=2,
        )
        assert isinstance(report, AdvisorReport)
        assert set(report.scores) == {"VMS", "VSM"}
        assert report.recommended in report.scores
        assert report.ranking()[0] == report.recommended
        assert all(len(v) == 2 for v in report.per_class.values())

    def test_plod_heavy_profile_prefers_vms(self, sample, base_config):
        """Table VII's mechanism through the advisor: a reduced-
        precision-dominated workload favors V-M-S; a full-precision
        retrieval workload favors V-S-M."""
        cost = PFSCostModel(byte_scale=(8 << 30) / sample.nbytes)
        plod_heavy = WorkloadProfile(
            ((QueryClass("value", 0.10, plod_level=2), 1.0),)
        )
        full_heavy = WorkloadProfile(((QueryClass("value", 0.10, plod_level=7), 1.0),))
        r_plod = recommend_level_order(
            sample, plod_heavy, base_config, cost_model=cost, n_queries=4
        )
        r_full = recommend_level_order(
            sample, full_heavy, base_config, cost_model=cost, n_queries=4
        )
        assert r_plod.recommended == "VMS"
        assert r_full.recommended == "VSM"

    def test_single_candidate(self, sample, base_config):
        report = recommend_level_order(
            sample,
            WorkloadProfile.fusion_like(),
            base_config,
            candidates=("VMS",),
            n_queries=1,
        )
        assert report.recommended == "VMS"

    def test_no_candidates_rejected(self, sample, base_config):
        with pytest.raises(ValueError, match="at least one candidate"):
            recommend_level_order(
                sample, WorkloadProfile.fusion_like(), base_config, candidates=()
            )

    def test_combined_pattern_runs(self, sample, base_config):
        profile = WorkloadProfile(((QueryClass("combined", 0.05), 1.0),))
        report = recommend_level_order(sample, profile, base_config, n_queries=1)
        assert report.recommended in ("VMS", "VSM")
