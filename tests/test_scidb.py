"""Tests for the SciDB-like baseline."""

import numpy as np
import pytest

from repro.baselines.scidb import SciDBStore
from repro.datasets import gts_like, s3d_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def sc_setup():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=2)
    store = SciDBStore.build(
        fs, "/sc", data, chunk_shape=(32, 32), overlap=2, startup_seconds=0.5
    )
    return fs, data, store


class TestCorrectness:
    def test_region_query_exact(self, sc_setup):
        fs, data, store = sc_setup
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.6, 0.7])
        fs.clear_cache()
        r = store.region_query((lo, hi))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))

    def test_value_query_exact(self, sc_setup):
        fs, data, store = sc_setup
        region = ((15, 70), (40, 110))
        fs.clear_cache()
        r = store.value_query(region)
        assert r.n_results == 55 * 70
        assert np.array_equal(r.values, data.reshape(-1)[r.positions])

    def test_3d(self):
        fs = SimulatedPFS()
        data = s3d_like((32, 32, 32), seed=4)
        store = SciDBStore.build(fs, "/s3", data, chunk_shape=(16, 16, 16), overlap=1)
        r = store.value_query(((4, 20), (0, 16), (8, 30)))
        sub = data[4:20, 0:16, 8:30]
        assert r.n_results == sub.size
        assert np.array_equal(r.values, data.reshape(-1)[r.positions])


class TestCostMechanisms:
    def test_overlap_replication_grows_storage(self, sc_setup):
        """Table I mechanism: chunk-boundary replication makes the
        stored array larger than the raw data."""
        fs, data, store = sc_setup
        stored = store.storage_bytes()["data"]
        assert stored > data.nbytes
        # (32+4)^2 / 32^2 = 1.27 upper bound for interior chunks
        assert stored < 1.3 * data.nbytes

    def test_more_overlap_more_storage(self):
        fs = SimulatedPFS()
        data = gts_like((64, 64), seed=7)
        s0 = SciDBStore.build(fs, "/o0", data, chunk_shape=(16, 16), overlap=0)
        s3 = SciDBStore.build(fs, "/o3", data, chunk_shape=(16, 16), overlap=3)
        assert s0.storage_bytes()["data"] == data.nbytes
        assert s3.storage_bytes()["data"] > s0.storage_bytes()["data"]

    def test_region_query_scans_all_chunks(self, sc_setup):
        fs, data, store = sc_setup
        fs.clear_cache()
        r = store.region_query((0.0, 0.0001))
        assert r.stats["chunks_scanned"] == store.grid.n_chunks
        assert r.stats["bytes_read"] == store.storage_bytes()["data"]

    def test_value_query_reads_covering_chunks_only(self, sc_setup):
        fs, data, store = sc_setup
        fs.clear_cache()
        r = store.value_query(((0, 32), (0, 32)))
        assert r.stats["chunks_scanned"] == 1

    def test_startup_floor(self, sc_setup):
        fs, data, store = sc_setup
        fs.clear_cache()
        r = store.value_query(((0, 1), (0, 1)))
        assert r.times.total >= store.startup_seconds

    def test_executor_cost_scales_with_bytes(self, sc_setup):
        fs, data, store = sc_setup
        fs.clear_cache()
        small = store.value_query(((0, 32), (0, 32)))
        fs.clear_cache()
        large = store.region_query((0.0, 1e9))
        assert large.times.reconstruction > small.times.reconstruction
