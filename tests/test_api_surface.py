"""API-surface tests: every advertised name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.pfs",
    "repro.parallel",
    "repro.sfc",
    "repro.binning",
    "repro.plod",
    "repro.compression",
    "repro.index",
    "repro.baselines",
    "repro.datasets",
    "repro.analysis",
    "repro.harness",
    "repro.tools",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every public class/function reachable from a package's __all__
    carries a docstring (deliverable e: doc comments on every public
    item)."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{package}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_methods_documented():
    """Public methods of the primary user-facing classes are documented."""
    from repro.core import MLOCDataset, MLOCStore, MLOCWriter
    from repro.pfs import SimulatedPFS

    missing = []
    for cls in (MLOCStore, MLOCWriter, MLOCDataset, SimulatedPFS):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            if not inspect.getdoc(member):
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
