"""Tests for block-to-rank assignment policies (Section III-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import (
    BlockList,
    BlockRef,
    assignment_file_counts,
    column_order_assignment,
    round_robin_assignment,
)


def _blocks(n_bins: int, n_chunks: int) -> list[BlockRef]:
    return [
        BlockRef(b, c, c * 10 + b) for b in range(n_bins) for c in range(n_chunks)
    ]


class TestColumnOrder:
    def test_balanced_counts(self):
        blocks = _blocks(4, 10)
        assignment = column_order_assignment(blocks, 8)
        sizes = [len(a) for a in assignment]
        assert sum(sizes) == 40
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_in_bin_major_order(self):
        blocks = _blocks(4, 10)
        assignment = column_order_assignment(blocks, 4)
        # Rank 0 must hold exactly bin 0 (10 blocks per bin, 10 per rank).
        assert {b.bin_id for b in assignment[0]} == {0}
        assert {b.bin_id for b in assignment[3]} == {3}

    def test_minimizes_files_vs_round_robin(self):
        blocks = _blocks(8, 16)
        col = assignment_file_counts(column_order_assignment(blocks, 8))
        rr = assignment_file_counts(round_robin_assignment(blocks, 8))
        # The paper's policy: column order touches strictly fewer bin
        # files per rank than dealing blocks round robin.
        assert col.sum() < rr.sum()
        assert col.max() <= 2  # contiguous spans cross at most one boundary

    def test_more_ranks_than_blocks(self):
        blocks = _blocks(1, 3)
        assignment = column_order_assignment(blocks, 8)
        assert sum(len(a) for a in assignment) == 3
        assert len(assignment) == 8

    def test_empty_blocks(self):
        assignment = column_order_assignment([], 4)
        assert assignment == [[], [], [], []]

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            column_order_assignment([], 0)
        with pytest.raises(ValueError):
            round_robin_assignment([], -1)


class TestRoundRobin:
    def test_deals_in_turn(self):
        blocks = _blocks(2, 4)
        assignment = round_robin_assignment(blocks, 4)
        sizes = [len(a) for a in assignment]
        assert sizes == [2, 2, 2, 2]
        # every rank sees both bins
        assert all(len({b.bin_id for b in a}) == 2 for a in assignment)


class TestBlockRefOrdering:
    def test_sort_key_is_bin_then_position(self):
        refs = [BlockRef(1, 0, 5), BlockRef(0, 9, 1), BlockRef(0, 2, 7)]
        assert sorted(refs) == [BlockRef(0, 2, 7), BlockRef(0, 9, 1), BlockRef(1, 0, 5)]


class TestBlockList:
    def test_refs_roundtrip(self):
        refs = _blocks(3, 5)
        work = BlockList.from_refs(refs)
        assert len(work) == 15
        assert work.to_refs() == refs
        assert work.bin_ids.dtype == np.int64

    def test_lexsorted_matches_sorted_refs(self):
        refs = [BlockRef(1, 0, 5), BlockRef(0, 9, 1), BlockRef(0, 2, 7)]
        assert BlockList.from_refs(refs).lexsorted().to_refs() == sorted(refs)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="column lengths"):
            BlockList(
                bin_ids=np.zeros(2, dtype=np.int64),
                cpos=np.zeros(3, dtype=np.int64),
                chunk_ids=np.zeros(2, dtype=np.int64),
            )

    def test_bin_segments_are_contiguous_runs(self):
        work = BlockList.from_refs(_blocks(3, 4)).lexsorted()
        segments = list(work.bin_segments())
        assert [s[0] for s in segments] == [0, 1, 2]
        for _, cpos, chunk_ids in segments:
            assert cpos.tolist() == [0, 1, 2, 3]
            assert chunk_ids.size == 4

    def test_bin_segments_empty(self):
        work = BlockList.from_refs([])
        assert list(work.bin_segments()) == []

    def test_policies_return_block_lists_for_block_list_input(self):
        work = BlockList.from_refs(_blocks(4, 6))
        for policy in (column_order_assignment, round_robin_assignment):
            spans = policy(work, 3)
            assert all(isinstance(s, BlockList) for s in spans)
            assert sum(len(s) for s in spans) == len(work)

    def test_file_counts_match_ref_path(self):
        refs = _blocks(5, 7)
        work = BlockList.from_refs(refs)
        for n_ranks in (1, 2, 4):
            from_refs = assignment_file_counts(column_order_assignment(refs, n_ranks))
            from_list = assignment_file_counts(column_order_assignment(work, n_ranks))
            assert np.array_equal(from_refs, from_list)


@settings(max_examples=50, deadline=None)
@given(
    n_bins=st.integers(min_value=1, max_value=12),
    n_chunks=st.integers(min_value=1, max_value=20),
    n_ranks=st.integers(min_value=1, max_value=16),
)
def test_partition_property(n_bins, n_chunks, n_ranks):
    """Every policy yields an exact, balanced partition of the blocks."""
    blocks = _blocks(n_bins, n_chunks)
    for policy in (column_order_assignment, round_robin_assignment):
        assignment = policy(blocks, n_ranks)
        flat = [b for rank in assignment for b in rank]
        assert sorted(flat) == sorted(blocks)
        sizes = [len(a) for a in assignment]
        assert max(sizes) - min(sizes) <= 1
