"""Tests for the N-D Hilbert curve: bijectivity, continuity, locality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.sfc.zorder import zorder_encode


class TestKnownValues:
    def test_2d_order1(self):
        # The canonical first-order 2-D Hilbert curve visits a "U".
        coords = hilbert_decode(np.arange(4, dtype=np.uint64), 2, 1)
        steps = np.abs(np.diff(coords.astype(np.int64), axis=0)).sum(axis=1)
        assert np.all(steps == 1)
        assert len({tuple(c) for c in coords.tolist()}) == 4

    def test_1d_is_identity(self):
        idx = np.arange(32, dtype=np.uint64)
        coords = hilbert_decode(idx, 1, 5)
        assert np.array_equal(coords[:, 0], idx)


@pytest.mark.parametrize("ndims,nbits", [(2, 1), (2, 5), (3, 3), (4, 2), (5, 2)])
class TestCurveInvariants:
    def test_bijective(self, ndims, nbits):
        n = (1 << nbits) ** ndims
        idx = np.arange(n, dtype=np.uint64)
        coords = hilbert_decode(idx, ndims, nbits)
        assert np.array_equal(hilbert_encode(coords, nbits), idx)
        assert len({tuple(c) for c in coords.tolist()}) == n

    def test_continuity(self, ndims, nbits):
        """Consecutive curve points are grid neighbours — the defining
        property of the Hilbert curve."""
        n = (1 << nbits) ** ndims
        coords = hilbert_decode(np.arange(n, dtype=np.uint64), ndims, nbits).astype(
            np.int64
        )
        steps = np.abs(np.diff(coords, axis=0))
        assert np.all(steps.sum(axis=1) == 1)

    def test_coords_in_range(self, ndims, nbits):
        n = (1 << nbits) ** ndims
        coords = hilbert_decode(np.arange(n, dtype=np.uint64), ndims, nbits)
        assert coords.min() == 0
        assert coords.max() == (1 << nbits) - 1


class TestLocality:
    def test_hilbert_beats_zorder_on_window_spread(self):
        """Moon et al.'s clustering property, the paper's motivation for
        HSFC over other curves: the average number of contiguous curve
        runs needed to cover a small query window is lower for Hilbert
        than for Z-order."""
        nbits = 5
        side = 1 << nbits
        rng = np.random.default_rng(3)

        def mean_runs(encode):
            runs = []
            for _ in range(40):
                x0, y0 = rng.integers(0, side - 8, size=2)
                xs, ys = np.meshgrid(
                    np.arange(x0, x0 + 8), np.arange(y0, y0 + 8), indexing="ij"
                )
                coords = np.stack([xs.reshape(-1), ys.reshape(-1)], axis=1)
                keys = np.sort(encode(coords, nbits).astype(np.int64))
                runs.append(1 + int((np.diff(keys) > 1).sum()))
            return np.mean(runs)

        assert mean_runs(hilbert_encode) < mean_runs(zorder_encode)


class TestValidation:
    def test_bit_budget(self):
        with pytest.raises(ValueError, match="64-bit"):
            hilbert_encode(np.zeros((1, 5), dtype=np.int64), 13)

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_encode(np.array([[4, 0]]), 2)
        with pytest.raises(ValueError, match="out of range"):
            hilbert_encode(np.array([[-1, 0]]), 2)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_decode(np.array([16], dtype=np.uint64), 2, 2)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            hilbert_encode(np.zeros(4, dtype=np.int64), 2)
        with pytest.raises(ValueError, match="1-D"):
            hilbert_decode(np.zeros((2, 2), dtype=np.uint64), 2, 2)

    def test_empty_inputs(self):
        assert hilbert_encode(np.zeros((0, 3), dtype=np.int64), 4).size == 0
        assert hilbert_decode(np.empty(0, dtype=np.uint64), 3, 4).shape == (0, 3)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_roundtrip_property(data):
    ndims = data.draw(st.integers(min_value=1, max_value=6))
    nbits = data.draw(st.integers(min_value=1, max_value=min(10, 64 // ndims)))
    n = data.draw(st.integers(min_value=1, max_value=50))
    coords = data.draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=(1 << nbits) - 1),
                min_size=ndims,
                max_size=ndims,
            ),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.array(coords, dtype=np.int64)
    back = hilbert_decode(hilbert_encode(arr, nbits), ndims, nbits)
    assert np.array_equal(back.astype(np.int64), arr)
