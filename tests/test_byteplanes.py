"""Tests for PLoD byte-plane decomposition (Fig. 3 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plod.byteplanes import (
    FULL_PLOD_LEVEL,
    GROUP_OFFSETS,
    GROUP_WIDTHS,
    N_GROUPS,
    assemble_from_groups,
    bytes_for_level,
    groups_for_level,
    plod_degrade,
    split_byte_groups,
)


class TestLevelArithmetic:
    def test_paper_byte_counts(self):
        # Level k fetches k+1 bytes: level 2 -> 3 bytes (paper's example).
        assert [bytes_for_level(k) for k in range(1, 8)] == [2, 3, 4, 5, 6, 7, 8]

    def test_group_geometry(self):
        assert N_GROUPS == 7
        assert GROUP_WIDTHS == (2, 1, 1, 1, 1, 1, 1)
        assert GROUP_OFFSETS == (0, 2, 3, 4, 5, 6, 7)
        assert sum(GROUP_WIDTHS) == 8

    def test_level_range_checked(self):
        for bad in (0, 8, -1):
            with pytest.raises(ValueError):
                bytes_for_level(bad)
            with pytest.raises(ValueError):
                groups_for_level(bad)


class TestSplitAssemble:
    def test_full_level_exact(self, rng):
        v = rng.uniform(-1e6, 1e6, 1000)
        groups = split_byte_groups(v)
        assert np.array_equal(assemble_from_groups(groups, v.size, FULL_PLOD_LEVEL), v)

    def test_group_sizes(self, rng):
        v = rng.uniform(0, 1, 100)
        groups = split_byte_groups(v)
        assert groups[0].size == 200  # two bytes per value
        assert all(g.size == 100 for g in groups[1:])

    def test_group0_is_big_endian_prefix(self):
        v = np.array([1.5])  # 0x3FF8000000000000
        groups = split_byte_groups(v)
        assert groups[0].tolist() == [0x3F, 0xF8]
        assert all(g.tolist() == [0x00] for g in groups[1:])

    def test_dummy_fill_is_midpoint_not_zero(self):
        """The paper fills 0x7F then 0xFF so truncated values land near
        the midpoint of the compatible interval, not at its bottom."""
        v = np.array([1.0 + 0.4999, 1000.25])
        approx = plod_degrade(v, 2)  # keep 3 bytes
        # Reconstruction must not be uniformly below the originals.
        assert np.all(approx != v)
        err_signed = approx - v
        assert err_signed.max() > 0 or np.abs(err_signed).max() < 1e-3

    def test_error_decreases_with_level(self, rng):
        v = rng.uniform(100, 5000, 20_000)
        prev = np.inf
        for level in range(1, 8):
            err = np.abs(plod_degrade(v, level) - v).max()
            assert err <= prev
            prev = err
        assert prev == 0.0

    def test_level2_error_matches_paper_magnitude(self, rng):
        """Paper: 3 bytes -> max per-point relative error ~0.008%-scale."""
        v = rng.uniform(100, 5000, 50_000)
        rel = np.abs(plod_degrade(v, 2) - v) / v
        assert rel.max() < 2e-4

    def test_negative_values(self, rng):
        v = -rng.uniform(1, 100, 1000)
        assert np.array_equal(plod_degrade(v, 7), v)
        rel = np.abs(plod_degrade(v, 3) - v) / np.abs(v)
        assert rel.max() < 1e-6

    def test_validation(self, rng):
        v = rng.uniform(0, 1, 10)
        groups = split_byte_groups(v)
        with pytest.raises(ValueError, match="1-D"):
            split_byte_groups(v.reshape(2, 5))
        with pytest.raises(ValueError, match="need 3 byte groups"):
            assemble_from_groups(groups[:2], 10, 3)
        with pytest.raises(ValueError, match="expected"):
            assemble_from_groups([groups[0][:-1]], 10, 1)

    def test_empty(self):
        groups = split_byte_groups(np.empty(0))
        assert assemble_from_groups(groups, 0, 7).size == 0


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=7),
)
def test_degrade_properties(values, level):
    v = np.array(values, dtype=np.float64)
    approx = plod_degrade(v, level)
    if level == 7:
        assert np.array_equal(approx, v)
    else:
        # Sign and exponent are always preserved (they live in group 0),
        # so the relative error of *normal* values is bounded by the
        # mantissa truncation of the kept bytes.  Subnormals carry their
        # entire magnitude in the mantissa, so no relative bound applies
        # to them (physical simulation values are normal).
        normal = np.abs(v) >= np.finfo(np.float64).tiny
        if normal.any():
            rel = np.abs(approx[normal] - v[normal]) / np.abs(v[normal])
            mantissa_bits_kept = max(8 * (level + 1) - 12, 4)
            assert rel.max() <= 2.0 ** -(mantissa_bits_kept - 1)
