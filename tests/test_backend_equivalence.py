"""Serial vs threaded vs process decode backends: identical answers,
identical simulated seconds.

The deterministic components of the cost model — simulated I/O,
modeled decompression, modeled communication — and every result array
must be bit-identical across backends (the backend only changes which
OS threads or worker processes run the pure block decodes).
Reconstruction is measured CPU and therefore only sanity-checked.

The CI matrix exports ``MLOC_PROC_WORKERS`` to pin extra process-pool
widths; locally the sweep covers 1, 2 and 8 workers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_iso
from repro.core.executor import QueryExecutor
from repro.datasets import gts_like, s3d_like
from repro.pfs import SimulatedPFS

PROC_WORKER_COUNTS = sorted({1, 2, 8, int(os.environ.get("MLOC_PROC_WORKERS", "2"))})

QUERIES = [
    Query(value_range=(0.0, 4.5), output="positions"),
    Query(value_range=(2.0, 6.0), output="values"),
    Query(region=((8, 100), (0, 64)), output="values"),
    Query(region=((8, 100), (0, 64)), output="values", plod_level=3),
    Query(value_range=(1.0, 5.0), region=((0, 128), (32, 96)), output="values"),
    Query(value_range=(100.0, 101.0), output="values"),  # empty result
]


def _build(maker, data, chunk_shape):
    fs = SimulatedPFS()
    config = maker(chunk_shape=chunk_shape, n_bins=8, target_block_bytes=8 * 1024)
    MLOCWriter(fs, "/store", config).write(data, variable="field")
    return fs


@pytest.fixture(scope="module")
def col_fs():
    return _build(mloc_col, gts_like((128, 128), seed=5), (32, 32))


@pytest.fixture(scope="module")
def iso_fs():
    return _build(mloc_iso, gts_like((128, 128), seed=5), (32, 32))


def _run_both(fs, query, **store_options):
    serial = MLOCStore.open(fs, "/store", "field", backend="serial", **store_options)
    threaded = MLOCStore.open(
        fs, "/store", "field", backend="threads", n_threads=4, **store_options
    )
    fs.clear_cache()
    a = serial.query(query)
    fs.clear_cache()
    b = threaded.query(query)
    return a, b


def _assert_equivalent(a, b):
    assert np.array_equal(a.positions, b.positions)
    if a.values is None:
        assert b.values is None
    else:
        assert np.array_equal(a.values, b.values)
    # Deterministic simulated components: exactly equal, not approx.
    assert a.times.io == b.times.io
    assert a.times.decompression == b.times.decompression
    assert a.times.communication == b.times.communication
    # Measured CPU component is still sane.
    assert b.times.reconstruction >= 0.0
    for key in ("bytes_read", "files_opened", "seeks", "blocks_planned",
                "cache_hits", "cache_misses", "n_results"):
        assert a.stats[key] == b.stats[key], key


@pytest.mark.parametrize("query", QUERIES)
def test_col_backend_equivalence(col_fs, query):
    a, b = _run_both(col_fs, query)
    _assert_equivalent(a, b)
    assert a.stats["backend"] == "serial"
    assert b.stats["backend"] == "threads"


@pytest.mark.parametrize("query", QUERIES[:3])
def test_iso_backend_equivalence(iso_fs, query):
    _assert_equivalent(*_run_both(iso_fs, query))


@pytest.mark.parametrize("query", QUERIES[:3])
def test_equivalence_with_cache(col_fs, query):
    """Cache hit patterns — and therefore warm simulated times — must
    also be backend-independent (insertion order is deterministic)."""
    for _ in range(2):  # cold round, then warm round
        a, b = _run_both(col_fs, query, cache_bytes=32 << 20)
        _assert_equivalent(a, b)


def test_3d_batch_equivalence():
    fs = _build(mloc_col, s3d_like((32, 32, 32), seed=6), (16, 16, 16))
    queries = [
        Query(region=((0, 24), (0, 32), (8, 32)), output="values"),
        Query(region=((4, 28), (0, 32), (8, 32)), output="values"),
        Query(value_range=(0.1, 0.9), output="positions"),
    ]
    serial = MLOCStore.open(fs, "/store", "field", backend="serial")
    threaded = MLOCStore.open(fs, "/store", "field", backend="threads")
    fs.clear_cache()
    batch_a = serial.query_many(queries)
    fs.clear_cache()
    batch_b = threaded.query_many(queries)
    for a, b in zip(batch_a, batch_b):
        _assert_equivalent(a, b)
    assert batch_a.times.io == batch_b.times.io
    assert batch_a.times.decompression == batch_b.times.decompression
    assert batch_a.stats["cache_hits"] == batch_b.stats["cache_hits"]


@pytest.mark.parametrize("workers", PROC_WORKER_COUNTS)
@pytest.mark.parametrize("query", QUERIES[:4])
def test_col_process_backend_equivalence(col_fs, query, workers):
    serial = MLOCStore.open(col_fs, "/store", "field", backend="serial")
    proc = MLOCStore.open(
        col_fs, "/store", "field", backend="processes", workers=workers
    )
    col_fs.clear_cache()
    a = serial.query(query)
    col_fs.clear_cache()
    b = proc.query(query)
    _assert_equivalent(a, b)
    assert b.stats["backend"] == "processes"
    assert b.stats["decode_backend"] == "processes"
    assert b.stats["decode_pool_failures"] == 0


@pytest.mark.parametrize("query", QUERIES[:3])
def test_iso_process_backend_equivalence(iso_fs, query):
    serial = MLOCStore.open(iso_fs, "/store", "field", backend="serial")
    proc = MLOCStore.open(
        iso_fs, "/store", "field", backend="processes", workers=2
    )
    iso_fs.clear_cache()
    a = serial.query(query)
    iso_fs.clear_cache()
    b = proc.query(query)
    _assert_equivalent(a, b)


@pytest.mark.parametrize("query", QUERIES[:3])
def test_auto_backend_equivalence(col_fs, query):
    """``auto`` must resolve to serial or processes — never change the
    answer or the simulated seconds, whichever it picks."""
    serial = MLOCStore.open(col_fs, "/store", "field", backend="serial")
    auto = MLOCStore.open(col_fs, "/store", "field", backend="auto", workers=2)
    col_fs.clear_cache()
    a = serial.query(query)
    col_fs.clear_cache()
    b = auto.query(query)
    _assert_equivalent(a, b)
    assert b.stats["backend"] == "auto"
    assert b.stats["decode_backend"] in ("serial", "processes")


def test_auto_resolves_by_workload_size(col_fs):
    """Tiny decode workloads stay inline under ``auto`` (the pending
    raw bytes here are far below AUTO_PROCESS_MIN_BYTES)."""
    auto = MLOCStore.open(col_fs, "/store", "field", backend="auto", workers=4)
    col_fs.clear_cache()
    result = auto.query(QUERIES[0])
    assert result.stats["decode_backend"] == "serial"


def test_backend_validation():
    fs = _build(mloc_col, gts_like((64, 64), seed=1), (32, 32))
    store = MLOCStore.open(fs, "/store", "field")
    ex = store.executor
    with pytest.raises(ValueError, match="backend"):
        QueryExecutor(
            fs, ex.files, ex.meta, ex.grid, ex.curve, backend="mpi"
        )
    with pytest.raises(ValueError, match="n_threads"):
        QueryExecutor(
            fs, ex.files, ex.meta, ex.grid, ex.curve, backend="threads", n_threads=0
        )
    with pytest.raises(ValueError, match="workers"):
        QueryExecutor(
            fs, ex.files, ex.meta, ex.grid, ex.curve, backend="processes", workers=-1
        )
