"""Tests for multi-variable access (Section III-D4)."""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_iso, multi_variable_query
from repro.datasets import gts_like
from repro.index.bitmap import Bitmap
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def two_vars():
    fs = SimulatedPFS()
    temp = gts_like((128, 128), seed=1)
    humidity = gts_like((128, 128), seed=2)
    cfg = mloc_col((16, 16), n_bins=8, target_block_bytes=4096)
    writer = MLOCWriter(fs, "/mv", cfg)
    writer.write(temp, variable="temp")
    writer.write(humidity, variable="humidity")
    t = MLOCStore.open(fs, "/mv", "temp", n_ranks=4)
    h = MLOCStore.open(fs, "/mv", "humidity", n_ranks=4)
    return fs, temp, humidity, t, h


class TestMultiVariableQuery:
    def test_select_then_fetch(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        flat_t = temp.reshape(-1)
        lo, hi = np.quantile(flat_t, [0.8, 0.95])
        fs.clear_cache()
        result = multi_variable_query(t, [h], value_range=(lo, hi))
        expect = np.flatnonzero((flat_t >= lo) & (flat_t <= hi))
        assert np.array_equal(result.positions, expect)
        assert np.array_equal(result.values["humidity"], humidity.reshape(-1)[expect])
        assert result.times.communication > 0
        assert result.selection.n_results == expect.size

    def test_with_region(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        flat_t = temp.reshape(-1)
        lo, hi = np.quantile(flat_t, [0.7, 1.0])
        region = ((32, 96), (0, 64))
        fs.clear_cache()
        result = multi_variable_query(t, [h], value_range=(lo, hi), region=region)
        mask = np.zeros(temp.shape, dtype=bool)
        mask[32:96, 0:64] = True
        expect = np.flatnonzero(mask.reshape(-1) & (flat_t >= lo) & (flat_t <= hi))
        assert np.array_equal(result.positions, expect)
        assert np.array_equal(result.values["humidity"], humidity.reshape(-1)[expect])

    def test_multiple_fetch_stores(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        flat_t = temp.reshape(-1)
        lo, hi = np.quantile(flat_t, [0.9, 1.0])
        result = multi_variable_query(t, [h, t], value_range=(lo, hi))
        # Fetching the selector itself returns values satisfying the VC.
        assert np.all((result.values["temp"] >= lo) & (result.values["temp"] <= hi))
        assert set(result.values) == {"humidity", "temp"}

    def test_empty_selection(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        flat_t = temp.reshape(-1)
        top = float(flat_t.max())
        result = multi_variable_query(t, [h], value_range=(top + 1, top + 2))
        assert result.positions.size == 0
        assert result.values["humidity"].size == 0

    def test_grid_mismatch_rejected(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        other_fs = SimulatedPFS()
        small = gts_like((64, 64), seed=3)
        MLOCWriter(other_fs, "/x", mloc_col((16, 16), n_bins=4)).write(small, "v")
        other = MLOCStore.open(other_fs, "/x", "v")
        with pytest.raises(ValueError, match="grid mismatch"):
            multi_variable_query(t, [other], value_range=(0.0, 1.0))


class TestFetchPositions:
    def test_fetch_only_touches_hit_chunks(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        # Positions confined to one chunk.
        positions = np.arange(0, 16) * 128  # column 0 of rows 0..15 -> chunk 0
        bitmap = Bitmap.from_positions(positions, h.n_elements)
        fs.clear_cache()
        result = h.fetch_positions(bitmap)
        assert np.array_equal(result.positions, positions)
        assert result.stats["chunks_accessed"] == 1
        assert np.array_equal(
            result.values, humidity.reshape(-1)[positions]
        )

    def test_fetch_empty_bitmap(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        result = h.fetch_positions(Bitmap(h.n_elements))
        assert result.positions.size == 0
        assert result.values is not None and result.values.size == 0
        # Nothing set -> no chunk visited, no byte read, no block decoded.
        assert result.stats["blocks_planned"] == 0
        assert result.stats["blocks_decoded"] == 0
        assert result.stats["chunks_accessed"] == 0
        assert result.stats["bytes_read"] == 0
        assert result.stats["seeks"] == 0
        assert result.times.io == 0.0
        assert result.times.decompression == 0.0

    def test_fetch_wrong_length_bitmap(self, two_vars):
        _, _, _, _, h = two_vars
        with pytest.raises(ValueError, match="bitmap covers"):
            h.fetch_positions(Bitmap(10))

    def test_fetch_plod_level(self, two_vars):
        fs, temp, humidity, t, h = two_vars
        positions = np.arange(100, 400, 7)
        bitmap = Bitmap.from_positions(positions, h.n_elements)
        result = h.fetch_positions(bitmap, plod_level=2)
        truth = humidity.reshape(-1)[positions]
        rel = np.abs(result.values - truth) / np.abs(truth)
        assert 0 < rel.max() < 3e-4


class TestMixedVariantMultivar:
    def test_col_selects_iso_fetches(self):
        fs = SimulatedPFS()
        a = gts_like((64, 64), seed=5)
        b = gts_like((64, 64), seed=6)
        MLOCWriter(fs, "/m", mloc_col((16, 16), n_bins=4)).write(a, "a")
        MLOCWriter(fs, "/m", mloc_iso((16, 16), n_bins=4)).write(b, "b")
        sa = MLOCStore.open(fs, "/m", "a")
        sb = MLOCStore.open(fs, "/m", "b")
        lo, hi = np.quantile(a.reshape(-1), [0.6, 0.8])
        result = multi_variable_query(sa, [sb], value_range=(lo, hi))
        expect = np.flatnonzero((a.reshape(-1) >= lo) & (a.reshape(-1) <= hi))
        assert np.array_equal(result.positions, expect)
        assert np.array_equal(result.values["b"], b.reshape(-1)[expect])
