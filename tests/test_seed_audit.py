"""Audit: every source of randomness in the repo is explicitly seeded.

The reproduction's determinism story — bit-identical reruns, replayable
chaos schedules, derandomized CI — only holds if no code path draws
from an unseeded generator.  This test greps the source tree for the
known ways nondeterminism sneaks in; a hit means a new call site must
either take an explicit seed or be added to the (currently empty)
allowlist with a justification.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCANNED_DIRS = ("src", "tests", "benchmarks")

#: pattern -> why it is banned
BANNED = {
    r"default_rng\(\s*\)": "unseeded numpy Generator",
    r"np\.random\.seed\(": "legacy global numpy seeding (use default_rng(seed))",
    r"np\.random\.(random|rand|randint|normal|uniform|choice|permutation)\(":
        "legacy global numpy RNG draw (use a seeded Generator)",
    r"RandomState\(\s*\)": "unseeded legacy RandomState",
    r"(?<!\.)\brandom\.(random|randint|randrange|choice|shuffle|uniform)\(":
        "stdlib global RNG draw",
    r"random\.seed\(\s*\)": "stdlib RNG seeded from wall clock",
}

#: (relative path, pattern) pairs exempted on purpose — keep this empty
#: unless a call site genuinely needs wall-clock entropy.
ALLOWLIST: set[tuple[str, str]] = set()


def _python_files():
    for directory in SCANNED_DIRS:
        yield from sorted((REPO / directory).rglob("*.py"))


def test_scanned_tree_is_nonempty():
    files = list(_python_files())
    assert len(files) > 50, "audit scope collapsed — check SCANNED_DIRS"


@pytest.mark.parametrize("pattern,reason", sorted(BANNED.items()))
def test_no_unseeded_randomness(pattern, reason):
    regex = re.compile(pattern)
    offenders = []
    for path in _python_files():
        rel = str(path.relative_to(REPO))
        if rel == str(Path("tests") / Path(__file__).name):
            continue  # the audit's own pattern table
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            if regex.search(stripped) and (rel, pattern) not in ALLOWLIST:
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, f"{reason}:\n" + "\n".join(offenders)
