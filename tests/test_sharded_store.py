"""ShardedMLOCStore: bit-identical scatter/gather and balanced bin cuts.

Two contracts, in the order the module builds on them:

* :func:`weighted_bin_partition` — contiguous, monotone, covering bin
  ranges whose stored-byte shares come out near-equal (empty shards
  beat splitting a heavy bin);
* :class:`ShardedMLOCStore` — for every shard count the merged answer
  (positions, values, planned/decoded block totals) is bit-identical
  to the unsharded store on the same bytes, the per-shard sub-plans
  exactly partition the planned work, and merged component times take
  the per-component max so simulated I/O scales near-linearly with
  shard count on bin-spanning queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, ShardedMLOCStore, mloc_col, mloc_iso
from repro.datasets import gts_like
from repro.index.bitmap import Bitmap
from repro.parallel.scheduler import weighted_bin_partition
from repro.pfs import SimulatedPFS

N_BINS = 16

QUERIES = [
    Query(value_range=(0.0, 4.5), output="positions"),
    Query(value_range=(2.0, 6.0), output="values"),
    Query(region=((8, 100), (0, 64)), output="values"),
    Query(region=((8, 100), (0, 64)), output="values", plod_level=3),
    Query(value_range=(1.0, 5.0), region=((0, 128), (32, 96)), output="values"),
    Query(value_range=(100.0, 101.0), output="values"),  # empty result
]


# ----------------------------------------------------------------------
# weighted_bin_partition
# ----------------------------------------------------------------------
class TestWeightedBinPartition:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_covering_and_monotone(self, n_shards, seed):
        weights = np.random.default_rng(seed).random(24) * 1000
        bounds = weighted_bin_partition(weights, n_shards)
        assert bounds.shape == (n_shards + 1,)
        assert bounds[0] == 0 and bounds[-1] == weights.size
        assert (np.diff(bounds) >= 0).all()
        # Every bin lands in exactly one shard.
        owners = np.concatenate(
            [np.full(bounds[s + 1] - bounds[s], s) for s in range(n_shards)]
        )
        assert owners.size == weights.size

    def test_near_equal_shares_on_smooth_weights(self):
        weights = np.full(32, 10.0)
        bounds = weighted_bin_partition(weights, 4)
        shares = [weights[bounds[s] : bounds[s + 1]].sum() for s in range(4)]
        assert shares == [80.0] * 4

    def test_cuts_follow_weight_not_bin_count(self):
        # All mass in the first two bins: the first cut must fall right
        # after them instead of at the bin-count midpoint.
        weights = np.array([500.0, 500.0] + [1.0] * 10)
        bounds = weighted_bin_partition(weights, 2)
        assert bounds[1] in (1, 2)

    def test_heavy_bin_yields_empty_shard_not_a_split(self):
        weights = np.array([1.0, 1000.0, 1.0, 1.0])
        bounds = weighted_bin_partition(weights, 3)
        assert (np.diff(bounds) >= 0).all()
        assert bounds[-1] == 4  # still covers everything

    def test_more_shards_than_bins(self):
        bounds = weighted_bin_partition(np.ones(3), 5)
        assert list(bounds) == [0, 1, 2, 3, 3, 3]

    def test_zero_weights_fall_back_to_span_split(self):
        bounds = weighted_bin_partition(np.zeros(8), 4)
        assert bounds[0] == 0 and bounds[-1] == 8
        assert (np.diff(bounds) > 0).all()  # no shard starves needlessly

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            weighted_bin_partition(np.ones(4), 0)
        with pytest.raises(ValueError, match="non-empty"):
            weighted_bin_partition(np.empty(0), 2)
        with pytest.raises(ValueError, match="non-negative"):
            weighted_bin_partition(np.array([1.0, -2.0]), 2)
        with pytest.raises(ValueError, match="1-D"):
            weighted_bin_partition(np.ones((2, 2)), 2)


# ----------------------------------------------------------------------
# ShardedMLOCStore vs the unsharded store on the same bytes
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def col_fs():
    fs = SimulatedPFS()
    config = mloc_col(
        chunk_shape=(32, 32), n_bins=N_BINS, target_block_bytes=8 * 1024
    )
    MLOCWriter(fs, "/store", config).write(
        gts_like((128, 128), seed=5), variable="field"
    )
    return fs


@pytest.fixture(scope="module")
def iso_fs():
    fs = SimulatedPFS()
    config = mloc_iso(
        chunk_shape=(32, 32), n_bins=N_BINS, target_block_bytes=8 * 1024
    )
    MLOCWriter(fs, "/store", config).write(
        gts_like((128, 128), seed=5), variable="field"
    )
    return fs


def _assert_same_answer(a, b):
    assert np.array_equal(a.positions, b.positions)
    if a.values is None:
        assert b.values is None
    else:
        assert np.array_equal(a.values, b.values)


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("query", QUERIES)
    def test_identical_to_unsharded(self, col_fs, n_shards, query):
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(
            col_fs, "/store", "field", n_shards=n_shards
        )
        col_fs.clear_cache()
        expected = flat.query(query)
        col_fs.clear_cache()
        result = sharded.query(query)
        _assert_same_answer(result, expected)
        # Planning happens once against the shared context, so the
        # plan-level stats are exactly the unsharded ones.  (Decode and
        # read totals are *not* compared: each shard re-balances its
        # bins across its own ranks, which changes how often a bin's
        # index block is decoded per rank — same effect as changing
        # n_ranks on a flat store.)
        for key in ("blocks_planned", "n_results"):
            assert result.stats[key] == expected.stats[key], key
        assert result.stats["n_shards"] == n_shards
        assert result.stats["shards_hit"] <= n_shards

    @pytest.mark.parametrize("query", QUERIES[:3])
    def test_iso_layout(self, iso_fs, query):
        flat = MLOCStore.open(iso_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(iso_fs, "/store", "field", n_shards=4)
        iso_fs.clear_cache()
        expected = flat.query(query)
        iso_fs.clear_cache()
        _assert_same_answer(sharded.query(query), expected)

    def test_query_many(self, col_fs):
        queries = QUERIES[:4]
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=4)
        col_fs.clear_cache()
        expect = flat.query_many(queries)
        col_fs.clear_cache()
        batch = sharded.query_many(queries)
        for a, b in zip(batch.results, expect.results):
            _assert_same_answer(a, b)
        assert batch.stats["n_queries"] == len(queries)
        assert batch.stats["n_shards"] == 4
        assert batch.stats["quarantined_blocks"] == 0

    def test_position_filter(self, col_fs):
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=4)
        base = Query(value_range=(2.0, 6.0), output="positions")
        col_fs.clear_cache()
        keep = Bitmap.from_positions(
            flat.query(base).positions[::2], flat.n_elements
        )
        narrow = Query(value_range=(2.0, 6.0), output="values")
        col_fs.clear_cache()
        expected = flat.query(narrow, position_filter=keep)
        col_fs.clear_cache()
        _assert_same_answer(sharded.query(narrow, position_filter=keep), expected)

    def test_empty_result_hits_no_shard_work(self, col_fs):
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=4)
        col_fs.clear_cache()
        result = sharded.query(QUERIES[-1])
        assert result.positions.size == 0
        assert result.stats["n_results"] == 0

    def test_warm_cache_round_stays_identical(self, col_fs):
        flat = MLOCStore.open(col_fs, "/store", "field", cache_bytes=32 << 20)
        sharded = ShardedMLOCStore.open(
            col_fs, "/store", "field", n_shards=4, cache_bytes=32 << 20
        )
        for _ in range(2):  # cold, then warm
            col_fs.clear_cache()
            expected = flat.query(QUERIES[1])
            col_fs.clear_cache()
            _assert_same_answer(sharded.query(QUERIES[1]), expected)

    def test_process_backend_per_shard(self, col_fs):
        """Shard fan-out composes with the process decode backend."""
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(
            col_fs, "/store", "field", n_shards=2,
            backend="processes", workers=2,
        )
        col_fs.clear_cache()
        expected = flat.query(QUERIES[1])
        col_fs.clear_cache()
        result = sharded.query(QUERIES[1])
        _assert_same_answer(result, expected)
        assert result.stats["backend"] == "processes"
        assert result.stats["decode_pool_failures"] == 0


class TestShardedScaling:
    def test_simulated_io_scales_near_linearly(self, col_fs):
        """A bin-spanning query's simulated I/O is gated by the slowest
        shard, so doubling shards should roughly halve it.  One rank
        per shard, so shard count is the only parallelism axis."""
        query = Query(value_range=(0.0, 8.0), output="values")
        io = {}
        for n in (1, 2, 4):
            sharded = ShardedMLOCStore.open(
                col_fs, "/store", "field", n_shards=n, n_ranks=1
            )
            col_fs.clear_cache()
            io[n] = sharded.query(query).times.io
        assert io[2] < 0.7 * io[1]
        assert io[4] < 0.7 * io[2]

    def test_total_ranks_multiply(self, col_fs):
        sharded = ShardedMLOCStore.open(
            col_fs, "/store", "field", n_shards=4, n_ranks=2
        )
        col_fs.clear_cache()
        result = sharded.query(QUERIES[0])
        assert result.stats["n_ranks"] == 8


class TestShardedHandle:
    def test_shard_map_consistency(self, col_fs):
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=4)
        bounds = sharded.shard_bounds
        assert bounds[0] == 0 and bounds[-1] == N_BINS
        for b in range(N_BINS):
            s = sharded.shard_of_bin(b)
            assert bounds[s] <= b < bounds[s + 1]
        with pytest.raises(ValueError, match="out of range"):
            sharded.shard_of_bin(N_BINS)
        weights = sharded.shard_weights()
        assert weights.shape == (4,)
        assert weights.sum() == pytest.approx(sharded._bin_weights().sum())
        # Balanced by stored bytes: no shard hoards the variable.
        assert weights.max() <= 0.6 * weights.sum()

    def test_shards_share_context_and_cache(self, col_fs):
        sharded = ShardedMLOCStore.open(
            col_fs, "/store", "field", n_shards=3, cache_bytes=16 << 20
        )
        assert all(s.context is sharded.context for s in sharded.shards)
        first = sharded.shards[0]
        assert all(s.cache is first.cache for s in sharded.shards[1:])

    def test_storage_report_matches_unsharded(self, col_fs):
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=4)
        assert sharded.storage_report() == flat.storage_report()

    def test_runtime_stats_shape(self, col_fs):
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=2)
        stats = sharded.runtime_stats()
        assert stats["n_shards"] == 2
        assert len(stats["shard_bounds"]) == 3
        assert len(stats["shards"]) == 2

    def test_open_session_parity_with_flat(self, col_fs):
        """Sharded refinement sessions step bit-identically to flat ones.

        Sessions drive the store-agnostic ``plan``/``execute_planned``
        surface, so the same refine ladder on a flat and a sharded
        handle must produce the same positions and values per step.
        """
        flat = MLOCStore.open(col_fs, "/store", "field")
        sharded = ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=2)
        query = Query(value_range=(2.0, 6.0), output="values", plod_level=2)
        col_fs.clear_cache()
        with flat.open_session(query) as fsess:
            flat_steps = [fsess.result]
            flat_steps += [fsess.refine(lv) for lv in (4, 7)]
        col_fs.clear_cache()
        with sharded.open_session(query) as ssess:
            assert ssess.level == 2
            shard_steps = [ssess.result]
            shard_steps += [ssess.refine(lv) for lv in (4, 7)]
        for a, b in zip(shard_steps, flat_steps):
            _assert_same_answer(a, b)
        assert shard_steps[-1].stats["refine_steps"] == 2
        assert shard_steps[-1].stats["n_shards"] == 2

    def test_validation(self, col_fs):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedMLOCStore.open(col_fs, "/store", "field", n_shards=0)
