"""Process-pool unit and fault tests: ordering, crash recovery, fallback.

Three layers of coverage for the shared-nothing ``processes`` backend:

* the pool itself — results in submission order, spec semantics
  identical to inline :func:`run_task`, a crashed worker raising
  :class:`PoolBrokenError` exactly once and the pool recovering on the
  next batch (never hanging, never dropping work);
* the query engine — a broken pool mid-decode falls back inline, the
  answer stays bit-identical to serial, and the failure is disclosed
  through ``stats["decode_pool_failures"]``;
* the writer — a broken pool at submit time falls back inline per
  task, output bytes stay identical to serial, and the backend counts
  the fallbacks.

The real-crash tests use the ``("__crash__",)`` spec (worker calls
``os._exit``); the engine/writer tests monkeypatch the pool instead so
the *point* of failure is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.core.writer import MLOCWriter as _WriterClass
from repro.datasets import gts_like
from repro.index.binindex import decode_position_block_flat, encode_position_block
from repro.parallel.procpool import (
    AUTO_PROCESS_MIN_BYTES,
    PoolBrokenError,
    ProcessPool,
    get_pool,
    run_task,
)
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def pool():
    """A private pool so crash tests never reset the shared ones."""
    p = ProcessPool(2)
    yield p
    p.shutdown()


def _encode_tasks(n):
    rng = np.random.default_rng(3)
    spec = ("encode-data", "zlib-bytes", (("level", 6),))
    return [
        (spec, rng.integers(0, 50, size=512 + i, dtype=np.uint8).tobytes())
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Pool semantics
# ----------------------------------------------------------------------
class TestPoolSemantics:
    def test_results_in_submission_order(self, pool):
        tasks = _encode_tasks(12)
        assert pool.run_tasks(tasks) == [run_task(t) for t in tasks]

    def test_decode_specs_match_inline(self, pool):
        rng = np.random.default_rng(4)
        planes = rng.integers(0, 8, size=2048, dtype=np.uint8).tobytes()
        floats = rng.normal(size=512)
        parts = [np.flatnonzero(rng.random(64) < 0.4) for _ in range(5)]
        counts = np.array([len(p) for p in parts], dtype=np.uint32)
        tasks = [
            (("bytes", "zlib-bytes", (), len(planes)),
             run_task((("encode-data", "zlib-bytes", ()), planes))),
            (("float", "zlib-float", (), floats.size),
             run_task((("encode-data", "zlib-float", ()), floats))),
            (("index", counts), encode_position_block(parts)),
        ]
        got = pool.run_tasks(tasks)
        assert np.array_equal(got[0], run_task(tasks[0]))
        assert np.array_equal(got[1], floats)
        assert np.array_equal(
            got[2], decode_position_block_flat(tasks[2][1], counts)
        )

    def test_task_errors_propagate_without_breaking_pool(self, pool):
        before = pool.broken_batches
        with pytest.raises(ValueError, match="unknown task spec"):
            pool.run_tasks([(("no-such-kind",), b"")])
        assert pool.broken_batches == before  # error != pool death
        assert pool.run_tasks(_encode_tasks(2)) == [
            run_task(t) for t in _encode_tasks(2)
        ]

    def test_worker_crash_raises_and_pool_recovers(self, pool):
        """A worker dying mid-batch surfaces as PoolBrokenError (never a
        hang, never a silently short result list) and the pool is usable
        again on the very next batch."""
        before = pool.broken_batches
        tasks = _encode_tasks(3)
        tasks.insert(1, (("__crash__",), None))
        with pytest.raises(PoolBrokenError):
            pool.run_tasks(tasks)
        assert pool.broken_batches == before + 1
        # Recovery: a fresh batch on the same ProcessPool object works.
        good = _encode_tasks(4)
        assert pool.run_tasks(good) == [run_task(t) for t in good]
        assert pool.broken_batches == before + 1

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPool(0)
        with pytest.raises(ValueError, match="unknown task spec"):
            run_task((("bogus", 1), b""))

    def test_shared_pools_keyed_by_width(self):
        assert get_pool(3) is get_pool(3)
        assert get_pool(3) is not get_pool(5)

    def test_auto_threshold_is_sane(self):
        # Guard against an accidental unit slip (MB vs bytes) that would
        # make "auto" either always or never pick processes.
        assert 1 << 20 <= AUTO_PROCESS_MIN_BYTES <= 64 << 20


# ----------------------------------------------------------------------
# Engine fallback: broken pool mid-query never changes the answer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def store_fs():
    fs = SimulatedPFS()
    config = mloc_col(
        chunk_shape=(32, 32), n_bins=8, target_block_bytes=8 * 1024
    )
    MLOCWriter(fs, "/store", config).write(
        gts_like((128, 128), seed=9), variable="field"
    )
    return fs


def _broken(monkeypatch, method):
    def boom(self, *args, **kwargs):
        raise PoolBrokenError("injected pool death")

    monkeypatch.setattr(ProcessPool, method, boom)


class TestEngineFallback:
    def test_broken_pool_falls_back_bit_identical(self, store_fs, monkeypatch):
        query = Query(value_range=(2.0, 6.0), output="values")
        serial = MLOCStore.open(store_fs, "/store", "field", backend="serial")
        store_fs.clear_cache()
        expected = serial.query(query)

        _broken(monkeypatch, "run_tasks")
        proc = MLOCStore.open(
            store_fs, "/store", "field", backend="processes", workers=2
        )
        store_fs.clear_cache()
        result = proc.query(query)

        assert np.array_equal(result.positions, expected.positions)
        assert np.array_equal(result.values, expected.values)
        assert result.times.io == expected.times.io
        assert result.times.decompression == expected.times.decompression
        assert result.stats["decode_backend"] == "processes"
        assert result.stats["decode_pool_failures"] == 1

    def test_pool_failures_sum_across_batch(self, store_fs, monkeypatch):
        _broken(monkeypatch, "run_tasks")
        proc = MLOCStore.open(
            store_fs, "/store", "field", backend="processes", workers=2
        )
        store_fs.clear_cache()
        batch = proc.query_many(
            [
                Query(value_range=(2.0, 6.0), output="values"),
                Query(region=((8, 100), (0, 64)), output="values"),
            ]
        )
        assert batch.stats["decode_pool_failures"] == 2
        assert batch.stats["n_results"] > 0

    def test_healthy_pool_reports_zero_failures(self, store_fs):
        proc = MLOCStore.open(
            store_fs, "/store", "field", backend="processes", workers=2
        )
        store_fs.clear_cache()
        result = proc.query(Query(value_range=(2.0, 6.0), output="values"))
        assert result.stats["decode_pool_failures"] == 0


# ----------------------------------------------------------------------
# Writer fallback: broken pool at submit time, bytes still serial's
# ----------------------------------------------------------------------
class TestWriterFallback:
    def test_broken_pool_write_is_bit_identical(self, monkeypatch):
        data = gts_like((64, 64), seed=12)
        config = mloc_col((16, 16), n_bins=8, target_block_bytes=2048)

        def files_of(fs):
            session = fs.session()
            return {
                p: bytes(session.open(p).read_all()) for p in fs.list_files("/w/")
            }

        fs_serial = SimulatedPFS()
        MLOCWriter(fs_serial, "/w", config).write(data, variable="f")

        captured = {}
        orig = _WriterClass._make_backend

        def spy(self, codec, nbytes):
            captured["backend"] = orig(self, codec, nbytes)
            return captured["backend"]

        monkeypatch.setattr(_WriterClass, "_make_backend", spy)
        _broken(monkeypatch, "submit")

        fs_proc = SimulatedPFS()
        MLOCWriter(
            fs_proc, "/w", config, write_backend="processes", write_workers=2
        ).write(data, variable="f")

        assert files_of(fs_proc) == files_of(fs_serial)
        assert captured["backend"].fallbacks > 0  # every task fell back
