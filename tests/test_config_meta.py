"""Tests for MLOCConfig and StoreMeta serialization."""

import numpy as np
import pytest

from repro.core.config import LEVEL_ORDERS, MLOCConfig, mloc_col, mloc_isa, mloc_iso
from repro.core.meta import StoreMeta


class TestConfig:
    def test_defaults(self):
        cfg = MLOCConfig(chunk_shape=(16, 16))
        assert cfg.n_bins == 100
        assert cfg.level_order == "VMS"
        assert cfg.plod_enabled
        assert cfg.n_groups == 7
        assert cfg.group_major

    def test_vs_order_disables_plod(self):
        cfg = MLOCConfig(chunk_shape=(8,), level_order="VS", codec="isobar")
        assert not cfg.plod_enabled
        assert cfg.n_groups == 1
        assert not cfg.group_major

    def test_vsm_order(self):
        cfg = MLOCConfig(chunk_shape=(8,), level_order="VSM")
        assert cfg.plod_enabled
        assert not cfg.group_major

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"level_order": "SVM"},
            {"level_order": "XYZ"},
            {"curve": "peano"},
            {"n_bins": 0},
            {"target_block_bytes": 0},
            {"sample_fraction": 0.0},
            {"sample_fraction": 1.5},
            {"chunk_shape": ()},
            {"chunk_shape": (0, 4)},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(chunk_shape=(16, 16))
        base.update(kwargs)
        with pytest.raises(ValueError):
            MLOCConfig(**base)

    def test_level_orders_exported(self):
        assert set(LEVEL_ORDERS) == {"VMS", "VSM", "VS"}

    def test_presets(self):
        col = mloc_col((8, 8))
        iso = mloc_iso((8, 8))
        isa = mloc_isa((8, 8))
        assert col.codec == "zlib-bytes" and col.plod_enabled
        assert iso.codec == "isobar" and not iso.plod_enabled
        assert isa.codec == "isabela" and not isa.plod_enabled

    def test_preset_overrides(self):
        cfg = mloc_col((8, 8), n_bins=7, curve="zorder")
        assert cfg.n_bins == 7 and cfg.curve == "zorder"

    def test_frozen(self):
        cfg = mloc_col((8, 8))
        with pytest.raises(AttributeError):
            cfg.n_bins = 5


class TestStoreMeta:
    def _make(self) -> StoreMeta:
        cfg = MLOCConfig(chunk_shape=(4, 4), n_bins=2, sample_fraction=0.5)
        counts = np.array([[3, 5], [13, 11]], dtype=np.uint32)  # sums to 32 = 8x4? no
        # shape (8, 4) -> 32 elements, 2 chunks of (4,4)
        meta = StoreMeta(
            variable="v",
            shape=(8, 4),
            config=cfg,
            edges=np.array([0.0, 0.5, 1.0]),
            counts=counts,
            data_blocks=[np.zeros((1, 6), dtype=np.int64) for _ in range(2)],
            index_blocks=[np.zeros((1, 5), dtype=np.int64) for _ in range(2)],
        )
        return meta

    def test_roundtrip(self):
        meta = self._make()
        back = StoreMeta.from_bytes(meta.to_bytes())
        assert back.variable == "v"
        assert back.shape == (8, 4)
        assert back.config == meta.config
        assert np.array_equal(back.counts, meta.counts)
        assert back.n_chunks == 2

    def test_validate_counts_sum(self):
        meta = self._make()
        meta.counts = meta.counts + 1
        with pytest.raises(ValueError, match="counts sum"):
            meta.validate()

    def test_validate_edges_shape(self):
        meta = self._make()
        meta.edges = np.array([0.0, 1.0])
        with pytest.raises(ValueError, match="edges shape"):
            meta.validate()

    def test_validate_block_tables(self):
        meta = self._make()
        meta.data_blocks = meta.data_blocks[:1]
        with pytest.raises(ValueError, match="one entry per bin"):
            meta.validate()

    def test_version_check(self):
        import pickle

        bad = pickle.dumps({"version": 999})
        with pytest.raises(ValueError, match="version"):
            StoreMeta.from_bytes(bad)
