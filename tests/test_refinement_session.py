"""Progressive refinement sessions: bit-identical to single-shot queries.

The engine-level contract of :class:`~repro.core.engine.session.
RefinementSession`: every step at PLoD level *k* returns exactly what a
fresh single-shot query at level *k* returns — across level orders
(V-M-S and V-S-M, including under the hierarchical Hilbert curve),
codecs, decode backends, and under sticky injected faults — while
fetching strictly fewer bytes than re-querying, because held planes are
never re-fetched (the session-reuse rule of DESIGN.md §engine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_isa, mloc_iso
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.pfs.faults import FaultPlan, FaultyPFS

LEVEL_STEPS = (2, 4, 7)


def _build(config, data=None):
    data = gts_like((64, 64), seed=11) if data is None else data
    fs = SimulatedPFS()
    MLOCWriter(fs, "/store", config).write(data, variable="field")
    return fs, data


def _plod_configs():
    """PLoD-capable layouts: both level orders x plain/hierarchical curve."""
    out = []
    for level_order in ("VMS", "VSM"):
        for curve in ("hilbert", "hierarchical"):
            out.append(
                pytest.param(
                    mloc_col(
                        chunk_shape=(16, 16),
                        n_bins=8,
                        target_block_bytes=2 * 1024,
                        level_order=level_order,
                        curve=curve,
                    ),
                    id=f"{level_order}-{curve}",
                )
            )
    return out


_QUERIES = [
    pytest.param(Query(region=((8, 56), (8, 56)), output="values"), id="region"),
    pytest.param(Query(value_range=(4.0, 6.0), output="values"), id="value"),
]


@pytest.mark.parametrize("backend", ["serial", "threads"])
@pytest.mark.parametrize("query_proto", _QUERIES)
@pytest.mark.parametrize("config", _plod_configs())
def test_steps_bit_identical_to_single_shot(config, query_proto, backend):
    from dataclasses import replace

    fs, _ = _build(config)
    store = MLOCStore.open(fs, "/store", "field", n_ranks=4, backend=backend)
    reference = MLOCStore.open(fs, "/store", "field", n_ranks=4, backend=backend)

    query = replace(query_proto, plod_level=LEVEL_STEPS[0])
    with store.open_session(query) as session:
        for level in LEVEL_STEPS[1:]:
            session.refine(level)
        assert session.level == LEVEL_STEPS[-1]
        assert session.refine_steps == len(LEVEL_STEPS) - 1
        assert session.bytes_reused > 0

        total_step_bytes = 0
        total_fresh_bytes = 0
        for level, step in zip(LEVEL_STEPS, session.results):
            fs.clear_cache()
            fresh = reference.query(replace(query_proto, plod_level=level))
            assert np.array_equal(step.positions, fresh.positions), level
            assert np.array_equal(step.values, fresh.values), level
            total_step_bytes += int(step.stats["bytes_read"])
            total_fresh_bytes += int(fresh.stats["bytes_read"])
        # The session never re-fetches a held plane, so its total bytes
        # are strictly below the sum of the independent queries.
        assert total_step_bytes < total_fresh_bytes
        # Refinement steps fetch only the missing byte-plane blocks.
        for earlier, later in zip(session.results, session.results[1:]):
            assert later.stats["bytes_read"] < total_fresh_bytes


def test_refine_validation():
    config = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=2 * 1024)
    fs, _ = _build(config)
    store = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    session = store.open_session(Query(region=((0, 32), (0, 32)), plod_level=3))
    with pytest.raises(ValueError, match="to_level"):
        session.refine(3)  # not strictly deeper
    with pytest.raises(ValueError, match="to_level"):
        session.refine(2)
    with pytest.raises(ValueError):
        session.refine(8)  # beyond full precision
    session.refine(5)
    assert session.level == 5
    session.close()
    with pytest.raises(ValueError, match="closed"):
        session.refine(6)
    session.close()  # idempotent


@pytest.mark.parametrize("maker", [mloc_iso, mloc_isa], ids=["iso", "isa"])
def test_refine_rejected_on_whole_value_layouts(maker):
    """VS layouts have no PLoD planes; refine() must refuse clearly."""
    config = maker(chunk_shape=(16, 16), n_bins=8, target_block_bytes=2 * 1024)
    fs, _ = _build(config)
    store = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    session = store.open_session(Query(region=((0, 32), (0, 32))))
    assert session.result.n_results > 0
    with pytest.raises(ValueError, match="PLoD"):
        session.refine(7)


@pytest.mark.parametrize("level_order", ["VMS", "VSM"])
def test_steps_identical_under_sticky_faults(level_order, chaos_seed):
    """Session steps equal fresh queries even when blocks rot on disk.

    Sticky-only faults are deterministic per extent and persistent, so
    two independent :class:`FaultyPFS` wrappers over the same base
    store damage exactly the same blocks: the session (which answers
    repeats from its quarantine without touching the PFS) and the
    fresh per-level queries must drop exactly the same points.
    """
    from dataclasses import replace

    config = mloc_col(
        chunk_shape=(16, 16),
        n_bins=8,
        target_block_bytes=2 * 1024,
        level_order=level_order,
    )
    fs, _ = _build(config)
    plan = FaultPlan(seed=chaos_seed, sticky_corruption_rate=0.08).sticky_only()
    ffs_session = FaultyPFS(fs, plan)
    ffs_fresh = FaultyPFS(fs, plan)
    store = MLOCStore.open(
        ffs_session, "/store", "field",
        n_ranks=4, allow_partial=True, max_read_retries=1,
    )
    reference = MLOCStore.open(
        ffs_fresh, "/store", "field",
        n_ranks=4, allow_partial=True, max_read_retries=1,
    )

    query = Query(region=((8, 56), (8, 56)), output="values", plod_level=LEVEL_STEPS[0])
    with store.open_session(query) as session:
        for level in LEVEL_STEPS[1:]:
            session.refine(level)
        for level, step in zip(LEVEL_STEPS, session.results):
            ffs_fresh.clear_cache()
            fresh = reference.query(replace(query, plod_level=level))
            assert np.array_equal(step.positions, fresh.positions), level
            assert np.array_equal(step.values, fresh.values), level
            assert step.stats["dropped_points"] == fresh.stats["dropped_points"]
            assert step.stats["partial_chunks"] == fresh.stats["partial_chunks"]


def test_session_pins_cache_blocks_and_close_releases():
    config = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=2 * 1024)
    fs, _ = _build(config)
    store = MLOCStore.open(
        fs, "/store", "field", n_ranks=4, cache_bytes=1 << 20
    )
    session = store.open_session(Query(region=((8, 56), (8, 56)), plod_level=2))
    assert len(store.cache.pinned_keys()) > 0
    pinned_at_2 = len(store.cache.pinned_keys())
    session.refine(7)
    assert len(store.cache.pinned_keys()) >= pinned_at_2
    session.close()
    assert store.cache.pinned_keys() == []


def test_concurrent_queries_cannot_evict_session_planes():
    """A tiny LRU under churn keeps every pinned session plane resident."""
    config = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=2 * 1024)
    fs, _ = _build(config)
    # Cache far too small for the whole working set: without pins the
    # churn queries would evict the session's planes.
    store = MLOCStore.open(fs, "/store", "field", n_ranks=4, cache_bytes=8 * 1024)
    with store.open_session(
        Query(region=((8, 24), (8, 24)), plod_level=2)
    ) as session:
        pinned = set(store.cache.pinned_keys())
        assert pinned
        for _ in range(3):
            store.query(Query(region=((32, 64), (32, 64)), output="values"))
        still_cached = {key for key in pinned if store.cache.get(key) is not None}
        assert still_cached == pinned
