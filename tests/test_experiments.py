"""Tests for the shared experiment row functions (tiny scale)."""

import pytest

from repro.harness import get_spec, get_suite
from repro.harness.experiments import (
    fig6_rows,
    fig8_rows,
    table1_rows,
    table2_rows,
)


@pytest.fixture(scope="module")
def suite_8g(monkeypatch=None):
    return get_suite(get_spec("8g", "gts", "tiny"), n_ranks=4)


class TestTable1Rows:
    def test_structure_and_paper_column(self, suite_8g):
        rows = table1_rows(suite_8g)
        assert set(rows) == {
            "mloc-col", "mloc-iso", "mloc-isa", "seqscan", "fastbit", "scidb",
        }
        for cells in rows.values():
            assert len(cells) == 4
            assert cells[2] == pytest.approx(cells[0] + cells[1], abs=2e-3)
        assert rows["seqscan"][:3] == [1.0, 0.0, 1.0]


class TestQueryRows:
    def test_table2_shape(self, suite_8g):
        rows = table2_rows(suite_8g, "gts", 1)  # floored to 3 internally
        assert all(len(v) == 4 for v in rows.values())
        assert all(v[0] > 0 for v in rows.values())

    def test_dataset_offset_selects_paper_columns(self, suite_8g):
        gts = table2_rows(suite_8g, "gts", 1)
        s3d = table2_rows(suite_8g, "s3d", 1)
        # Same workload (up to wall-time jitter), different paper
        # reference columns.
        assert gts["seqscan"][0] == pytest.approx(s3d["seqscan"][0], rel=0.25)
        assert gts["seqscan"][2:] != s3d["seqscan"][2:]


class TestFigureRows:
    def test_fig6_components_sum(self, suite_8g):
        rows = fig6_rows(suite_8g, 1)
        for cells in rows.values():
            # total >= io + decomp + reconstruction (communication adds
            # a little on top; rounding subtracts a little).
            assert cells[3] >= 0.9 * (cells[0] + cells[1] + cells[2])

    def test_fig8_io_monotone(self, suite_8g):
        rows = fig8_rows(suite_8g, 1, levels=(1, 4, 7))
        ios = [rows[f"PLoD {lvl} ({lvl + 1}B)"][0] for lvl in (1, 4, 7)]
        assert ios[0] < ios[1] < ios[2]
