"""Tests for the experiment harness: scales, workloads, system suite."""

import numpy as np
import pytest

from repro.harness.scales import SCALE_TIERS, get_spec, scale_tier
from repro.harness.systems import ALL_SYSTEMS, SystemSuite
from repro.harness.tables import PAPER, format_rows, record_result
from repro.harness.workloads import WorkloadGenerator


class TestScales:
    def test_all_tiers_resolve(self):
        for tier in SCALE_TIERS:
            for size_class in ("8g", "512g"):
                for kind in ("gts", "s3d"):
                    spec = get_spec(size_class, kind, tier)
                    assert spec.kind == kind
                    assert spec.n_elements > 0

    def test_byte_scale_matches_paper_size(self):
        spec = get_spec("8g", "gts", "tiny")
        assert spec.byte_scale == pytest.approx((8 << 30) / spec.raw_bytes)
        spec512 = get_spec("512g", "gts", "tiny")
        assert spec512.paper_bytes == 512 << 30

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="no spec"):
            get_spec("1024g", "gts", "tiny")

    def test_env_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_tier() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale_tier()

    def test_generate(self):
        spec = get_spec("8g", "s3d", "tiny")
        data = spec.generate()
        assert data.shape == spec.shape


class TestWorkloads:
    @pytest.fixture()
    def gen(self, rng):
        data = rng.normal(0, 1, (64, 64))
        return WorkloadGenerator.for_data(data, seed=3)

    def test_value_constraints_hit_selectivity(self, rng):
        data = rng.normal(0, 1, (128, 128))
        gen = WorkloadGenerator.for_data(data, seed=1)
        flat = data.reshape(-1)
        for lo, hi in gen.value_constraints(0.05, 10):
            frac = ((flat >= lo) & (flat <= hi)).mean()
            assert 0.03 < frac < 0.08

    def test_region_constraints_hit_selectivity(self, gen):
        for region in gen.region_constraints(0.01, 10):
            volume = np.prod([hi - lo for lo, hi in region]) / (64 * 64)
            assert 0.005 < volume < 0.02
            for (lo, hi), extent in zip(region, (64, 64)):
                assert 0 <= lo < hi <= extent

    def test_deterministic(self, gen):
        assert gen.value_constraints(0.1, 3) == gen.value_constraints(0.1, 3)
        assert gen.region_constraints(0.1, 3) == gen.region_constraints(0.1, 3)

    def test_selectivity_validated(self, gen):
        with pytest.raises(ValueError):
            gen.value_constraints(0.0, 1)
        with pytest.raises(ValueError):
            gen.region_constraints(1.5, 1)

    def test_3d_regions(self, rng):
        data = rng.normal(0, 1, (32, 32, 32))
        gen = WorkloadGenerator.for_data(data, seed=2)
        for region in gen.region_constraints(0.001, 5):
            assert len(region) == 3


class TestSystemSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return SystemSuite(get_spec("8g", "gts", "tiny"), n_ranks=4)

    def test_all_systems_answer_identically(self, suite):
        """Cross-system integration: every system returns the same
        positions for the same region query (ISA within its bound)."""
        flat = suite.flat
        lo, hi = np.quantile(flat, [0.40, 0.44])
        expect = np.flatnonzero((flat >= lo) & (flat <= hi))
        for name in ALL_SYSTEMS:
            r = suite.region_query(name, (lo, hi))
            if name == "mloc-isa":
                assert abs(r.n_results - expect.size) < 0.01 * expect.size + 20
            else:
                assert np.array_equal(r.positions, expect), name

    def test_all_systems_same_value_query(self, suite):
        region = suite.workload.region_constraints(0.01, 1)[0]
        reference = None
        for name in ALL_SYSTEMS:
            r = suite.value_query(name, region)
            if reference is None:
                reference = r.positions
            assert np.array_equal(r.positions, reference), name

    def test_storage_bytes_reported(self, suite):
        for name in ALL_SYSTEMS:
            sizes = suite.storage_bytes(name)
            assert sizes["data"] > 0
            assert sizes["index"] >= 0

    def test_average_helpers(self, suite):
        vcs = suite.workload.value_constraints(0.02, 2)
        times, n = suite.average_region_times("mloc-col", vcs)
        assert times.total > 0 and n > 0

    def test_block_bytes_floor(self, suite):
        assert suite.block_bytes >= 4096

    def test_unknown_system(self, suite):
        with pytest.raises(ValueError, match="unknown system"):
            suite.store("duckdb")


class TestTables:
    def test_paper_reference_complete(self):
        for exp in (
            "table1_storage_gb",
            "table2_region_8g",
            "table3_value_8g",
            "table4_region_512g",
            "table5_value_512g",
            "table6_plod_accuracy_pct",
            "table7_level_orders",
        ):
            assert exp in PAPER

    def test_format_rows(self):
        text = format_rows("T", ["system", "a"], {"x": [1.2345]})
        assert "T" in text and "x" in text and "1.234" in text

    def test_record_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = record_result("unit_test", {"rows": {"a": [1, 2]}})
        assert path.exists()
        import json

        payload = json.loads(path.read_text())
        assert payload["experiment"] == "unit_test"
