"""Tests for the PFS cost model: monotonicity and scaling semantics."""

import pytest

from repro.pfs.costmodel import IOStats, PFSCostModel


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ost_count": 0},
            {"stripe_size": 0},
            {"ost_bandwidth": -1},
            {"client_bandwidth": 0},
            {"seek_time": -0.1},
            {"byte_scale": 0},
            {"cpu_scale": -1},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            PFSCostModel(**kwargs)


class TestSerialTime:
    def test_components_additive(self):
        m = PFSCostModel(ost_bandwidth=100e6, seek_time=0.01, open_time=0.001)
        t = m.serial_time(IOStats(opens=2, seeks=3, bytes_read=100_000_000))
        assert t == pytest.approx(2 * 0.001 + 3 * 0.01 + 1.0)

    def test_monotone_in_bytes(self):
        m = PFSCostModel()
        t1 = m.serial_time(IOStats(bytes_read=1000))
        t2 = m.serial_time(IOStats(bytes_read=2000))
        assert t2 > t1

    def test_client_bandwidth_bounds_serial(self):
        # A slow node link dominates a fast OST.
        m = PFSCostModel(ost_bandwidth=1e9, client_bandwidth=1e6)
        t = m.serial_time(IOStats(bytes_read=1_000_000))
        assert t == pytest.approx(1.0)

    def test_byte_scale_multiplies_transfer(self):
        base = PFSCostModel(seek_time=0.0, open_time=0.0)
        scaled = PFSCostModel(seek_time=0.0, open_time=0.0, byte_scale=10.0)
        s = IOStats(bytes_read=1_000_000)
        assert scaled.serial_time(s) == pytest.approx(10 * base.serial_time(s))


class TestParallelTime:
    def test_wrong_ost_vector_length(self):
        m = PFSCostModel(ost_count=4)
        with pytest.raises(ValueError, match="expected 4"):
            m.parallel_time([], [0, 0])

    def test_max_ost_governs_transfer(self):
        m = PFSCostModel(
            ost_count=2, ost_bandwidth=100e6, client_bandwidth=1e12, seek_time=0, open_time=0
        )
        # One hot OST: 200 MB on OST 0 -> 2 s regardless of OST 1.
        t = m.parallel_time([IOStats()], [200_000_000, 0])
        assert t == pytest.approx(2.0)
        balanced = m.parallel_time([IOStats()], [100_000_000, 100_000_000])
        assert balanced == pytest.approx(1.0)

    def test_node_link_bounds_aggregate(self):
        m = PFSCostModel(
            ost_count=4, ost_bandwidth=100e6, client_bandwidth=200e6, seek_time=0, open_time=0
        )
        # 4 x 100 MB spread perfectly: OST-bound says 1 s, node says 2 s.
        t = m.parallel_time([IOStats()], [100_000_000] * 4)
        assert t == pytest.approx(2.0)

    def test_rank_overhead_is_max(self):
        m = PFSCostModel(seek_time=0.01, open_time=0.0)
        light = IOStats(seeks=1)
        heavy = IOStats(seeks=10)
        t = m.parallel_time([light, heavy], [0] * m.ost_count)
        assert t == pytest.approx(0.1)

    def test_empty_access_is_free(self):
        m = PFSCostModel()
        assert m.parallel_time([], [0] * m.ost_count) == 0.0


class TestCpuScale:
    def test_defaults_to_byte_scale(self):
        assert PFSCostModel(byte_scale=7.0).effective_cpu_scale == 7.0

    def test_explicit_override(self):
        m = PFSCostModel(byte_scale=7.0, cpu_scale=2.0)
        assert m.effective_cpu_scale == 2.0

    def test_scaled_bytes(self):
        assert PFSCostModel(byte_scale=3.0).scaled_bytes(10) == 30.0


class TestIOStats:
    def test_merge(self):
        a = IOStats(opens=1, seeks=2, bytes_read=3, reads=4)
        b = IOStats(opens=10, seeks=20, bytes_read=30, reads=40)
        a.merge(b)
        assert (a.opens, a.seeks, a.bytes_read, a.reads) == (11, 22, 33, 44)

    def test_copy_is_independent(self):
        a = IOStats(opens=1)
        c = a.copy()
        c.opens = 99
        assert a.opens == 1


class TestMultiNode:
    def test_node_links_aggregate_with_ranks(self):
        """The paper's 128-process runs span nodes, so the node-link
        bound relaxes as ranks grow (Fig. 7's 2 GB/s aggregate)."""
        m = PFSCostModel(
            ost_count=16,
            ost_bandwidth=100e6,
            client_bandwidth=400e6,
            cores_per_node=16,
            seek_time=0,
            open_time=0,
        )
        per_ost = [100_000_000] * 16  # 1.6 GB spread evenly
        one_node = m.parallel_time([IOStats()] * 8, per_ost)
        many_nodes = m.parallel_time([IOStats()] * 128, per_ost)
        assert one_node == pytest.approx(1.6e9 / 400e6)  # node-link bound
        # 8 nodes x 400 MB/s = 3.2 GB/s > 16 OSTs x 100 MB/s = 1.6 GB/s:
        # the OST side becomes the binding constraint.
        assert many_nodes == pytest.approx(1.0)

    def test_cores_per_node_validated(self):
        with pytest.raises(ValueError):
            PFSCostModel(cores_per_node=0)
