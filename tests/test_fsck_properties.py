"""Property test: fsck detects arbitrary single-byte corruption.

Every byte of every subfile is live payload covered by either the
metadata CRCs (data/index blocks) or the pickle framing (meta), so any
bit flip anywhere must surface as at least one fsck issue.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MLOCWriter, mloc_col, mloc_iso
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS
from repro.tools import check_store


def _build(maker):
    fs = SimulatedPFS()
    data = gts_like((64, 64), seed=4)
    cfg = maker(chunk_shape=(16, 16), n_bins=4, target_block_bytes=2048)
    MLOCWriter(fs, "/p", cfg).write(data, variable="f")
    return fs


@pytest.fixture(scope="module")
def col_fs_snapshot(tmp_path_factory):
    fs = _build(mloc_col)
    path = tmp_path_factory.mktemp("snap") / "col.pfs"
    fs.save(path)
    return path


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_bitflip_detected(col_fs_snapshot, data):
    fs = SimulatedPFS.load(col_fs_snapshot)
    subfiles = [
        p for p in fs.list_files("/p/f/") if p.endswith(".data") or p.endswith(".index")
    ]
    target = data.draw(st.sampled_from(subfiles))
    raw = bytearray(fs.session().open(target).read_all())
    assert raw, target
    offset = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    raw[offset] ^= 1 << bit
    fs.write_file(target, bytes(raw))
    issues = check_store(fs, "/p", "f")
    assert issues, f"undetected corruption: {target} byte {offset} bit {bit}"
    # Payload corruption is classified, not just detected: the CRC
    # check pins it to the damaged subfile with kind "crc-mismatch",
    # naming the extent in quarantine-registry coordinates.
    crc_issues = [i for i in issues if i.kind == "crc-mismatch"]
    assert crc_issues, f"flip in {target} not classified as crc-mismatch"
    for issue in crc_issues:
        assert issue.path == target
        assert issue.offset is not None and 0 <= issue.offset <= offset


def test_pristine_store_has_no_issues_of_any_kind():
    fs = _build(mloc_col)
    assert check_store(fs, "/p", "f") == []


def test_issue_kind_defaults_to_other_for_structural_damage():
    fs = _build(mloc_col)
    # Chop the last block off a data table: a structural inconsistency,
    # not payload damage — must surface with the generic kind.
    from repro.core import StoreMeta

    meta = StoreMeta.from_bytes(bytes(fs.session().open("/p/f/meta").read_all()))
    meta.data_blocks[0] = meta.data_blocks[0][:-1]
    fs.write_file("/p/f/meta", meta.to_bytes())
    issues = check_store(fs, "/p", "f")
    assert issues
    assert all(i.kind == "other" for i in issues if "table" in i.location)


def test_truncating_any_subfile_detected():
    fs = _build(mloc_iso)
    for target in fs.list_files("/p/f/"):
        if target.endswith("/meta"):
            continue
        pristine = fs.session().open(target).read_all()
        fs.write_file(target, pristine[:-1])
        assert check_store(fs, "/p", "f"), target
        fs.write_file(target, pristine)  # restore for the next subfile
    assert check_store(fs, "/p", "f") == []
