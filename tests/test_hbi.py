"""Unit tests for the hierarchical compressed bitmap index.

Covers the structural contracts in isolation: the write-time streaming
builder and the lazy from-store builder must be byte-identical, the
serialized record must roundtrip and reject corruption, interior-node
range queries must agree with brute-force sums over the exact count
matrix in O(fanout log n_bins) nodes, and leaf-resolved positions must
match ground-truth bin membership of the raw field.
"""

import numpy as np
import pytest

from repro.core import MLOCStore, MLOCWriter, mloc_col
from repro.datasets import gts_like
from repro.index.hbi import (
    HBIBuilder,
    HBIndex,
    build_from_store,
    decode_hierarchical_bitmap,
    encode_hierarchical_bitmap,
    hbi_path,
)
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def store_and_field():
    fs = SimulatedPFS()
    field = gts_like((64, 64), seed=11)
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    MLOCWriter(fs, "/h", cfg).write(field, variable="f")
    return MLOCStore.open(fs, "/h", "f", use_hbi=True), field


class TestConstruction:
    def test_writer_and_lazy_builder_agree_byte_for_byte(self, store_and_field):
        store, _ = store_and_field
        persisted = bytes(
            store.fs.session().open(hbi_path(store.root)).read_all()
        )
        rebuilt = build_from_store(store).to_bytes()
        assert persisted == rebuilt

    def test_builder_rejects_out_of_order_chunks(self):
        builder = HBIBuilder(2, 4, 16)
        builder.add_chunk(0, np.empty(0, dtype=np.int64), np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="in order"):
            builder.add_chunk(2, np.empty(0, dtype=np.int64), np.zeros(3, dtype=np.int64))

    def test_builder_rejects_missing_chunks(self):
        builder = HBIBuilder(2, 4, 16)
        builder.add_chunk(0, np.empty(0, dtype=np.int64), np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="before finish"):
            builder.finish()

    def test_run_counts_match_meta(self, store_and_field):
        store, _ = store_and_field
        hbi = store.hbi
        counts = store.meta.counts.astype(np.int64)
        n_runs = hbi.n_runs
        padded = np.zeros((hbi.n_bins, n_runs * hbi.leaf_span), dtype=np.int64)
        padded[:, : hbi.n_chunks] = counts
        expected = padded.reshape(hbi.n_bins, n_runs, hbi.leaf_span).sum(axis=2)
        assert np.array_equal(hbi.run_counts, expected)

    def test_validate_passes(self, store_and_field):
        store, _ = store_and_field
        store.hbi.validate()


class TestSerialization:
    def test_roundtrip(self, store_and_field):
        store, _ = store_and_field
        hbi = store.hbi
        clone = HBIndex.from_bytes(hbi.to_bytes())
        assert clone.to_bytes() == hbi.to_bytes()
        assert np.array_equal(clone.run_counts, hbi.run_counts)
        assert np.array_equal(clone.leaf_words, hbi.leaf_words)
        assert len(clone.levels) == len(hbi.levels)
        clone.validate()

    def test_bad_magic_rejected(self, store_and_field):
        store, _ = store_and_field
        raw = bytearray(store.hbi.to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(ValueError, match="not a hierarchical"):
            HBIndex.from_bytes(bytes(raw))

    def test_any_corruption_fails_crc(self, store_and_field):
        store, _ = store_and_field
        raw = bytearray(store.hbi.to_bytes())
        for offset in (len(raw) // 3, len(raw) // 2, len(raw) - 10):
            flipped = bytearray(raw)
            flipped[offset] ^= 0x40
            with pytest.raises(ValueError, match="CRC|version|hierarchical"):
                HBIndex.from_bytes(bytes(flipped))

    def test_unknown_version_rejected(self, store_and_field):
        import struct
        import zlib

        store, _ = store_and_field
        raw = bytearray(store.hbi.to_bytes())
        struct.pack_into("<I", raw, 8, 99)  # version field after magic
        body = bytes(raw[:-4])
        raw[-4:] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(ValueError, match="version 99"):
            HBIndex.from_bytes(bytes(raw))


class TestInteriorNodes:
    def test_range_counts_match_brute_force_for_every_range(self, store_and_field):
        store, _ = store_and_field
        hbi = store.hbi
        n_levels = len(hbi.levels) + 1
        # Segment-tree decomposition: per level at most fanout-1 nodes
        # peeled off each unaligned edge, plus a fully-covered top.
        bound = 2 * (hbi.fanout - 1) * n_levels + hbi.fanout
        for lo in range(hbi.n_bins + 1):
            for hi in range(lo, hbi.n_bins + 1):
                counts, visited = hbi.range_run_counts(lo, hi)
                assert np.array_equal(counts, hbi.run_counts[lo:hi].sum(axis=0))
                assert visited <= bound, (lo, hi, visited, bound)
                assert hbi.cardinality(lo, hi) == int(counts.sum())

    def test_range_validation(self, store_and_field):
        store, _ = store_and_field
        with pytest.raises(ValueError, match="bad bin range"):
            store.hbi.range_run_counts(-1, 2)
        with pytest.raises(ValueError, match="bad bin range"):
            store.hbi.range_run_counts(0, store.hbi.n_bins + 1)


class TestLeaves:
    def test_positions_match_ground_truth_membership(self, store_and_field):
        store, field = store_and_field
        hbi = store.hbi
        bin_ids = store.scheme.assign(field.reshape(-1))
        for lo, hi in [(0, 1), (2, 5), (0, hbi.n_bins), (7, 8), (3, 3)]:
            got = hbi.range_positions(lo, hi, store.grid, store.curve)
            expect = np.flatnonzero((bin_ids >= lo) & (bin_ids < hi))
            assert np.array_equal(got, expect), (lo, hi)

    def test_leaf_cardinality_matches_counts(self, store_and_field):
        from repro.index.bitmap import wah_cardinality

        store, _ = store_and_field
        hbi = store.hbi
        for b in range(hbi.n_bins):
            for r in range(hbi.n_runs):
                assert wah_cardinality(hbi.leaf(b, r)) == hbi.run_counts[b, r]


class TestExchangePayload:
    def test_roundtrip(self, store_and_field):
        store, field = store_and_field
        flat = field.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.6])
        positions = np.flatnonzero((flat >= lo) & (flat <= hi))
        payload = encode_hierarchical_bitmap(positions, store.grid, store.curve)
        decoded = decode_hierarchical_bitmap(payload, store.grid, store.curve)
        assert np.array_equal(decoded, positions)

    def test_empty_roundtrip(self, store_and_field):
        store, _ = store_and_field
        payload = encode_hierarchical_bitmap(
            np.empty(0, dtype=np.int64), store.grid, store.curve
        )
        decoded = decode_hierarchical_bitmap(payload, store.grid, store.curve)
        assert decoded.size == 0

    def test_payload_overhead_is_bounded(self, store_and_field):
        from repro.index.bitmap import Bitmap

        store, field = store_and_field
        flat_field = field.reshape(-1)
        hbi = store.hbi
        # The run directory costs a fixed header plus one entry per
        # non-empty run, and restarting the 63-bit group phase at each
        # run boundary can split a handful of words that the whole-
        # domain form merges.  Pin that per-run slack so the directory
        # can never silently bloat the exchange.
        for q_lo, q_hi in [(0.0, 0.05), (0.3, 0.5), (0.0, 1.0)]:
            lo, hi = np.quantile(flat_field, [q_lo, q_hi])
            positions = np.flatnonzero((flat_field >= lo) & (flat_field <= hi))
            payload = encode_hierarchical_bitmap(
                positions, store.grid, store.curve, hbi.leaf_span
            )
            flat = Bitmap.from_positions(positions, store.n_elements).wah_bytes()
            assert len(payload) <= len(flat) + 12 + 32 * hbi.n_runs
