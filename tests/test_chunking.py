"""Tests for chunk-grid geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import ChunkGrid, normalize_region, region_size


@pytest.fixture()
def grid2d() -> ChunkGrid:
    return ChunkGrid((64, 128), (16, 32))


@pytest.fixture()
def grid3d() -> ChunkGrid:
    return ChunkGrid((32, 32, 32), (8, 16, 8))


class TestConstruction:
    def test_derived_quantities(self, grid2d):
        assert grid2d.grid_shape == (4, 4)
        assert grid2d.n_chunks == 16
        assert grid2d.chunk_size == 512
        assert grid2d.n_elements == 8192
        assert grid2d.ndims == 2

    def test_rejects_ragged(self):
        with pytest.raises(ValueError, match="not a multiple"):
            ChunkGrid((65, 128), (16, 32))


class TestChunkIdMapping:
    def test_roundtrip(self, grid3d):
        ids = np.arange(grid3d.n_chunks)
        assert np.array_equal(grid3d.chunk_ids(grid3d.chunk_coords(ids)), ids)

    def test_row_major_convention(self, grid2d):
        assert grid2d.chunk_coords(np.array([0]))[0].tolist() == [0, 0]
        assert grid2d.chunk_coords(np.array([1]))[0].tolist() == [0, 1]
        assert grid2d.chunk_coords(np.array([4]))[0].tolist() == [1, 0]

    def test_chunk_slices(self, grid2d):
        slices = grid2d.chunk_slices(5)  # coords (1, 1)
        assert slices == (slice(16, 32), slice(32, 64))


class TestRegions:
    def test_normalize_accepts_slices_and_pairs(self):
        region = normalize_region((slice(2, 6), (0, 4)), (8, 8))
        assert region == ((2, 6), (0, 4))

    def test_normalize_defaults(self):
        region = normalize_region((slice(None), slice(3, None)), (8, 8))
        assert region == ((0, 8), (3, 8))

    def test_normalize_rejects_bad_bounds(self):
        for bad in [((0, 9),), ((3, 3),), ((-1, 4),)]:
            with pytest.raises(ValueError):
                normalize_region(bad, (8,))
        with pytest.raises(ValueError, match="rank"):
            normalize_region(((0, 4),), (8, 8))
        with pytest.raises(ValueError, match="step"):
            normalize_region((slice(0, 4, 2),), (8,))

    def test_region_size(self):
        assert region_size(((2, 6), (0, 4))) == 16

    def test_chunks_overlapping_exact(self, grid2d):
        ids = grid2d.chunks_overlapping(((0, 16), (0, 32)))
        assert ids.tolist() == [0]
        ids = grid2d.chunks_overlapping(((15, 17), (31, 33)))
        assert sorted(ids.tolist()) == [0, 1, 4, 5]

    def test_chunks_overlapping_whole(self, grid2d):
        assert grid2d.chunks_overlapping(((0, 64), (0, 128))).size == 16

    def test_chunk_within_region(self, grid2d):
        region = ((0, 32), (0, 64))
        assert grid2d.chunk_within_region(0, region)
        assert not grid2d.chunk_within_region(2, region)

    def test_positions_in_region(self, grid2d):
        region = ((10, 20), (5, 9))
        positions = np.array([10 * 128 + 5, 10 * 128 + 9, 9 * 128 + 5])
        assert grid2d.positions_in_region(positions, region).tolist() == [
            True,
            False,
            False,
        ]


class TestPositions:
    def test_global_positions_match_numpy(self, grid3d):
        data = np.arange(grid3d.n_elements).reshape(grid3d.shape)
        for chunk_id in [0, 7, grid3d.n_chunks - 1]:
            block = data[grid3d.chunk_slices(chunk_id)].reshape(-1)
            local = np.arange(grid3d.chunk_size)
            assert np.array_equal(grid3d.global_positions(chunk_id, local), block)

    def test_global_positions_batch_matches_single(self, grid2d, rng):
        chunk_ids = np.array([3, 7, 11])
        locals_per_chunk = [
            np.sort(rng.choice(grid2d.chunk_size, size=5, replace=False))
            for _ in chunk_ids
        ]
        batch = grid2d.global_positions_batch(
            chunk_ids,
            np.concatenate(locals_per_chunk),
            np.array([5, 5, 5]),
        )
        singles = np.concatenate(
            [
                grid2d.global_positions(int(c), l)
                for c, l in zip(chunk_ids, locals_per_chunk)
            ]
        )
        assert np.array_equal(batch, singles)

    def test_batch_count_mismatch(self, grid2d):
        with pytest.raises(ValueError, match="counts sum"):
            grid2d.global_positions_batch(
                np.array([0]), np.array([0, 1]), np.array([1])
            )

    def test_batch_empty(self, grid2d):
        out = grid2d.global_positions_batch(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert out.size == 0

    def test_coords_roundtrip(self, grid3d, rng):
        positions = rng.integers(0, grid3d.n_elements, 100)
        coords = grid3d.positions_to_coords(positions)
        assert np.array_equal(grid3d.coords_to_positions(coords), positions)

    def test_chunk_of_positions(self, grid2d):
        # Element (17, 40) lives in chunk (1, 1) = id 5.
        pos = np.array([17 * 128 + 40])
        assert grid2d.chunk_of_positions(pos).tolist() == [5]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_position_roundtrip_property(data):
    ndims = data.draw(st.integers(min_value=1, max_value=3))
    chunk_shape = tuple(
        data.draw(st.integers(min_value=1, max_value=6)) for _ in range(ndims)
    )
    multiples = tuple(
        data.draw(st.integers(min_value=1, max_value=4)) for _ in range(ndims)
    )
    shape = tuple(c * m for c, m in zip(chunk_shape, multiples))
    grid = ChunkGrid(shape, chunk_shape)
    chunk_id = data.draw(st.integers(min_value=0, max_value=grid.n_chunks - 1))
    local = np.arange(grid.chunk_size)
    positions = grid.global_positions(chunk_id, local)
    # Every produced position maps back to the same chunk.
    assert np.all(grid.chunk_of_positions(positions) == chunk_id)
    # And positions are unique within the array.
    assert np.unique(positions).size == positions.size
