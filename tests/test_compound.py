"""Tests for compound multivariate constraints."""

import numpy as np
import pytest

from repro.core import MLOCDataset, mloc_col
from repro.core.compound import (
    CompoundResult,
    VariableConstraint,
    compound_query,
)
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def tri_var():
    fs = SimulatedPFS()
    cfg = mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)
    dataset = MLOCDataset(fs, "/cv", cfg, n_ranks=4)
    fields = {
        "temp": gts_like((128, 128), seed=1),
        "humidity": gts_like((128, 128), seed=2),
        "pressure": gts_like((128, 128), seed=3),
    }
    for name, data in fields.items():
        dataset.write(data, name)
    stores = {name: dataset.store(name) for name in fields}
    return fs, fields, stores


class TestVariableConstraint:
    def test_helpers(self):
        c = VariableConstraint.above("t", 5.0)
        assert c.ranges == ((5.0, np.inf),)
        c = VariableConstraint.below("t", 5.0)
        assert c.ranges == ((-np.inf, 5.0),)
        c = VariableConstraint.between("t", 1.0, 2.0)
        assert c.ranges == ((1.0, 2.0),)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            VariableConstraint("t", ())
        with pytest.raises(ValueError, match="empty range"):
            VariableConstraint("t", ((2.0, 1.0),))


class TestConjunction:
    def test_two_variable_and(self, tri_var):
        fs, fields, stores = tri_var
        t, h = fields["temp"].reshape(-1), fields["humidity"].reshape(-1)
        t_lo = float(np.quantile(t, 0.6))
        h_lo = float(np.quantile(h, 0.6))
        result = compound_query(
            stores,
            [
                VariableConstraint.above("temp", t_lo),
                VariableConstraint.above("humidity", h_lo),
            ],
        )
        expect = np.flatnonzero((t >= t_lo) & (h >= h_lo))
        assert np.array_equal(result.positions, expect)
        assert np.array_equal(result.values["temp"], t[expect])
        assert np.array_equal(result.values["humidity"], h[expect])

    def test_three_variable_and_with_region(self, tri_var):
        fs, fields, stores = tri_var
        t = fields["temp"].reshape(-1)
        h = fields["humidity"].reshape(-1)
        p = fields["pressure"].reshape(-1)
        t_lo = float(np.quantile(t, 0.5))
        h_lo = float(np.quantile(h, 0.5))
        p_hi = float(np.quantile(p, 0.5))
        region = ((16, 112), (32, 96))
        result = compound_query(
            stores,
            [
                VariableConstraint.above("temp", t_lo),
                VariableConstraint.above("humidity", h_lo),
                VariableConstraint.below("pressure", p_hi),
            ],
            fetch=["pressure"],
            region=region,
        )
        mask = np.zeros((128, 128), dtype=bool)
        mask[16:112, 32:96] = True
        expect = np.flatnonzero(
            mask.reshape(-1) & (t >= t_lo) & (h >= h_lo) & (p <= p_hi)
        )
        assert np.array_equal(result.positions, expect)
        assert list(result.values) == ["pressure"]
        assert np.array_equal(result.values["pressure"], p[expect])

    def test_empty_conjunction_short_circuits(self, tri_var):
        fs, fields, stores = tri_var
        t = fields["temp"].reshape(-1)
        impossible = float(t.max()) + 5.0
        result = compound_query(
            stores,
            [
                VariableConstraint.above("temp", impossible),
                VariableConstraint.above("humidity", -np.inf),
            ],
        )
        assert result.n_results == 0
        # The humidity region-only step must have been skipped.
        assert "humidity" not in result.selections


class TestRangeUnions:
    def test_union_of_ranges(self, tri_var):
        fs, fields, stores = tri_var
        t = fields["temp"].reshape(-1)
        q = np.quantile(t, [0.1, 0.2, 0.8, 0.9])
        result = compound_query(
            stores,
            [VariableConstraint("temp", ((q[0], q[1]), (q[2], q[3])))],
        )
        expect = np.flatnonzero(
            ((t >= q[0]) & (t <= q[1])) | ((t >= q[2]) & (t <= q[3]))
        )
        assert np.array_equal(result.positions, expect)
        assert len(result.selections["temp"]) == 2


class TestOrderingAndValidation:
    def test_most_selective_evaluated_first(self, tri_var):
        fs, fields, stores = tri_var
        t = fields["temp"].reshape(-1)
        h = fields["humidity"].reshape(-1)
        narrow = float(np.quantile(h, 0.99))
        result = compound_query(
            stores,
            [
                VariableConstraint.above("temp", float(np.quantile(t, 0.1))),
                VariableConstraint.above("humidity", narrow),
            ],
        )
        # Both evaluated (no empty short-circuit) but correct anyway.
        expect = np.flatnonzero((t >= np.quantile(t, 0.1)) & (h >= narrow))
        assert np.array_equal(result.positions, expect)

    def test_duplicate_variable_rejected(self, tri_var):
        fs, fields, stores = tri_var
        with pytest.raises(ValueError, match="duplicate"):
            compound_query(
                stores,
                [
                    VariableConstraint.above("temp", 0.0),
                    VariableConstraint.below("temp", 1.0),
                ],
            )

    def test_missing_store_rejected(self, tri_var):
        fs, fields, stores = tri_var
        with pytest.raises(ValueError, match="no store"):
            compound_query(stores, [VariableConstraint.above("vorticity", 0.0)])
        with pytest.raises(ValueError, match="no store"):
            compound_query(
                stores,
                [VariableConstraint.above("temp", 0.0)],
                fetch=["vorticity"],
            )

    def test_empty_constraints_rejected(self, tri_var):
        fs, fields, stores = tri_var
        with pytest.raises(ValueError, match="at least one"):
            compound_query(stores, [])

    def test_times_accumulate(self, tri_var):
        fs, fields, stores = tri_var
        t = fields["temp"].reshape(-1)
        fs.clear_cache()
        result = compound_query(
            stores, [VariableConstraint.above("temp", float(np.quantile(t, 0.9)))]
        )
        assert result.times.total > 0
        assert result.times.communication > 0
        assert isinstance(result, CompoundResult)
