"""Smoke tests for the standalone reproduction runner (repro.bench)."""

import pytest

from repro.bench import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults_cover_all_experiments(self):
        args = build_parser().parse_args([])
        assert set(args.experiments.split(",")) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["--experiments", "table99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_unknown_dataset_rejected(self, capsys):
        assert main(["--datasets", "mnist"]) == 2
        assert "unknown datasets" in capsys.readouterr().err


class TestRun:
    @pytest.fixture(autouse=True)
    def _tiny(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        self.tmp_path = tmp_path

    def test_table1_runs_and_records(self, capsys):
        assert main(["--experiments", "table1", "--datasets", "gts", "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "mloc-isa" in out
        assert (self.tmp_path / "results" / "bench_table1.json").exists()

    def test_no_record_flag(self, capsys):
        assert main([
            "--experiments", "table1", "--datasets", "gts",
            "--queries", "1", "--no-record",
        ]) == 0
        assert not (self.tmp_path / "results" / "bench_table1.json").exists()

    def test_fig8_with_svg(self, capsys):
        svg_dir = self.tmp_path / "figs"
        assert main([
            "--experiments", "fig8", "--datasets", "gts",
            "--queries", "1", "--svg", str(svg_dir),
        ]) == 0
        assert (svg_dir / "fig8_gts.svg").exists()
        assert "Fig 8" in capsys.readouterr().out
