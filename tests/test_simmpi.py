"""Tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.parallel.simmpi import CommCostModel, SimCommunicator, payload_nbytes, spmd


class TestSpmd:
    def test_runs_every_rank(self):
        assert spmd(4, lambda r: r * r) == [0, 1, 4, 9]

    def test_size_validated(self):
        with pytest.raises(ValueError):
            spmd(0, lambda r: r)


class TestPayloadNbytes:
    def test_arrays_and_bytes(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes(None) == 0
        assert payload_nbytes(3.14) == 8

    def test_containers_recursive(self):
        assert payload_nbytes([np.zeros(2), b"ab"]) == 18
        assert payload_nbytes({"k": b"abcd"}) == 4 + 64  # value + opaque key

    def test_opaque_object(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64

    def test_object_with_nbytes(self):
        class Sized:
            nbytes = 123

        assert payload_nbytes(Sized()) == 123


class TestCollectives:
    def test_gather_returns_all(self):
        comm = SimCommunicator(3)
        assert comm.gather([1, 2, 3]) == [1, 2, 3]
        assert comm.comm_seconds > 0

    def test_contribution_count_checked(self):
        comm = SimCommunicator(3)
        with pytest.raises(ValueError, match="one contribution per rank"):
            comm.gather([1, 2])

    def test_bcast(self):
        comm = SimCommunicator(4)
        assert comm.bcast("v") == ["v"] * 4

    def test_allreduce_or(self):
        comm = SimCommunicator(3)
        result = comm.allreduce([{1}, {2}, {3}], lambda a, b: a | b)
        assert result == {1, 2, 3}

    def test_allreduce_empty_rejected(self):
        comm = SimCommunicator(1)
        # size-1 communicator still needs exactly one contribution
        assert comm.allreduce([5], lambda a, b: a + b) == 5

    def test_allgather(self):
        comm = SimCommunicator(2)
        assert comm.allgather(["a", "b"]) == ["a", "b"]

    def test_single_rank_free(self):
        comm = SimCommunicator(1)
        comm.gather([np.zeros(1000)])
        comm.barrier()
        assert comm.comm_seconds == 0.0

    def test_size_validated(self):
        with pytest.raises(ValueError):
            SimCommunicator(0)


class TestCommCost:
    def test_cost_grows_with_payload(self):
        model = CommCostModel()
        small = model.collective_seconds(8, 100)
        big = model.collective_seconds(8, 1_000_000)
        assert big > small

    def test_log_latency_term(self):
        model = CommCostModel(latency=1.0, byte_time=0.0)
        assert model.collective_seconds(8, 0) == pytest.approx(3.0)
        assert model.collective_seconds(2, 0) == pytest.approx(1.0)

    def test_comm_seconds_accumulate(self):
        comm = SimCommunicator(4)
        comm.gather([b"x" * 1000] * 4)
        first = comm.comm_seconds
        comm.gather([b"x" * 1000] * 4)
        assert comm.comm_seconds == pytest.approx(2 * first)
