"""Plan-equivalence suite: the vectorized planning/scheduling pipeline
must reproduce the seed's object pipeline block-for-block.

The columnar work-list, the lexsort-based assignment policies, the
store-resident :class:`PlanContext`, and the plan cache are pure
performance work — DESIGN.md's plan-equivalence rule says none of them
may change which blocks a rank receives, in what order, or any result
byte or simulated second.  This file pins that rule against embedded
copies of the seed's reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.binner import BinScheme
from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_iso
from repro.core.chunking import ChunkGrid
from repro.core.planner import PlanCache, PlanContext, QueryPlan, plan_query
from repro.core.writer import make_curve
from repro.datasets import gts_like
from repro.parallel.scheduler import (
    BlockList,
    BlockRef,
    column_order_assignment,
    round_robin_assignment,
)
from repro.pfs import SimulatedPFS

# ----------------------------------------------------------------------
# Seed reference implementations (verbatim semantics of the pre-columnar
# pipeline; kept here as the equivalence oracle).
# ----------------------------------------------------------------------


def _seed_block_refs(plan: QueryPlan) -> list[BlockRef]:
    return [
        BlockRef(int(b), int(cp), int(cid))
        for b in plan.bin_ids
        for cp, cid in zip(plan.cpos, plan.chunk_ids)
    ]


def _seed_column_order(blocks: list[BlockRef], n_ranks: int) -> list[list[BlockRef]]:
    ordered = sorted(blocks)
    base, extra = divmod(len(ordered), n_ranks)
    out, start = [], 0
    for rank in range(n_ranks):
        size = base + (1 if rank < extra else 0)
        out.append(ordered[start : start + size])
        start += size
    return out


def _seed_round_robin(blocks: list[BlockRef], n_ranks: int) -> list[list[BlockRef]]:
    ordered = sorted(blocks)
    out: list[list[BlockRef]] = [[] for _ in range(n_ranks)]
    for i, block in enumerate(ordered):
        out[i % n_ranks].append(block)
    return out


def _synthetic_plan(n_bins: int, n_chunks: int, seed: int) -> QueryPlan:
    rng = np.random.default_rng(seed)
    cpos = np.sort(
        rng.choice(4 * n_chunks, size=n_chunks, replace=False)
    ).astype(np.int64)
    return QueryPlan(
        bin_ids=np.sort(rng.choice(64, size=n_bins, replace=False)).astype(np.int64),
        aligned=rng.random(n_bins) < 0.5,
        cpos=cpos,
        chunk_ids=rng.permutation(n_chunks).astype(np.int64),
        interior=rng.random(n_chunks) < 0.5,
        region=None,
    )


def _assert_assignment_equal(seed_assignment, array_assignment):
    assert len(seed_assignment) == len(array_assignment)
    for seed_rank, rank_list in zip(seed_assignment, array_assignment):
        assert isinstance(rank_list, BlockList)
        assert seed_rank == rank_list.to_refs()


# ----------------------------------------------------------------------
# Scheduler equivalence on synthetic work-lists
# ----------------------------------------------------------------------


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7, 8, 16])
    @pytest.mark.parametrize("shape", [(1, 1), (3, 17), (16, 50), (5, 64)])
    def test_column_order_matches_seed(self, shape, n_ranks):
        plan = _synthetic_plan(*shape, seed=shape[0] * 100 + n_ranks)
        seed = _seed_column_order(_seed_block_refs(plan), n_ranks)
        array = column_order_assignment(plan.block_list(), n_ranks)
        _assert_assignment_equal(seed, array)

    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7, 8, 16])
    @pytest.mark.parametrize("shape", [(1, 1), (3, 17), (16, 50), (5, 64)])
    def test_round_robin_matches_seed(self, shape, n_ranks):
        plan = _synthetic_plan(*shape, seed=shape[0] * 300 + n_ranks)
        seed = _seed_round_robin(_seed_block_refs(plan), n_ranks)
        array = round_robin_assignment(plan.block_list(), n_ranks)
        _assert_assignment_equal(seed, array)

    def test_block_list_matches_seed_refs(self):
        plan = _synthetic_plan(7, 33, seed=5)
        assert plan.block_refs() == _seed_block_refs(plan)

    def test_ref_input_matches_block_list_input(self):
        plan = _synthetic_plan(4, 21, seed=9)
        refs = plan.block_refs()
        from_refs = column_order_assignment(refs, 4)
        from_list = column_order_assignment(plan.block_list(), 4)
        assert from_refs == [span.to_refs() for span in from_list]

    def test_empty_work_list(self):
        empty = BlockList(
            bin_ids=np.empty(0, dtype=np.int64),
            cpos=np.empty(0, dtype=np.int64),
            chunk_ids=np.empty(0, dtype=np.int64),
        )
        for policy in (column_order_assignment, round_robin_assignment):
            spans = policy(empty, 4)
            assert len(spans) == 4
            assert all(len(s) == 0 for s in spans)


# ----------------------------------------------------------------------
# Planner equivalence on real stores across layout variants
# ----------------------------------------------------------------------


def _write_store(config, data, **store_kwargs):
    fs = SimulatedPFS()
    MLOCWriter(fs, "/eq", config).write(data, variable="field")
    return fs, MLOCStore.open(fs, "/eq", "field", **store_kwargs)


@pytest.fixture(scope="module")
def eq_field() -> np.ndarray:
    return gts_like((128, 128), seed=21)


CONFIGS = [
    ("VMS-hilbert", dict(level_order="VMS", curve="hilbert")),
    ("VSM-zorder", dict(level_order="VSM", curve="zorder")),
    ("VMS-rowmajor", dict(level_order="VMS", curve="rowmajor")),
    ("VMS-hierarchical", dict(level_order="VMS", curve="hierarchical")),
]

QUERIES = [
    Query(value_range=(0.2, 0.8), output="values"),
    Query(region=((16, 96), (32, 128)), output="values", plod_level=3),
    Query(value_range=(0.1, 0.5), region=((0, 64), (0, 64)), output="positions"),
]


class TestStoreEquivalence:
    @pytest.mark.parametrize("label,overrides", CONFIGS)
    def test_assignments_match_seed(self, eq_field, label, overrides):
        config = mloc_col(
            (32, 32), n_bins=8, target_block_bytes=8 * 1024, **overrides
        )
        _, store = _write_store(config, eq_field, n_ranks=4)
        for query in QUERIES:
            plan = store.context.plan_uncached(query)
            for n_ranks in (1, 3, 4, 8):
                seed = _seed_column_order(_seed_block_refs(plan), n_ranks)
                array = column_order_assignment(plan.block_list(), n_ranks)
                _assert_assignment_equal(seed, array)

    @pytest.mark.parametrize("maker", [mloc_col, mloc_iso])
    def test_results_identical_with_plan_cache(self, eq_field, maker):
        """Plan cache on vs off: bit-identical results and simulated
        seconds, with the hit/miss counters reporting correctly."""
        config = maker((32, 32), n_bins=8, target_block_bytes=8 * 1024)
        fs, plain = _write_store(config, eq_field, n_ranks=4)
        cached = MLOCStore(
            fs, plain.root, plain.meta, n_ranks=4, plan_cache=8
        )
        for query in QUERIES:
            fs.clear_cache()
            r0 = plain.query(query)
            fs.clear_cache()
            r1 = cached.query(query)  # miss: plans from scratch
            fs.clear_cache()
            r2 = cached.query(query)  # hit: served from the LRU
            assert r0.stats["plan_cache_hits"] == 0
            assert r0.stats["plan_cache_misses"] == 0
            assert r1.stats["plan_cache_misses"] == 1
            assert r2.stats["plan_cache_hits"] == 1
            for other in (r1, r2):
                assert np.array_equal(r0.positions, other.positions)
                if r0.values is not None:
                    assert np.array_equal(r0.values, other.values)
                assert r0.times.io == other.times.io
                assert r0.times.decompression == other.times.decompression
                assert r0.times.communication == other.times.communication

    def test_scheduler_policies_end_to_end(self, eq_field):
        """Both policies produce identical query results (assignment
        only redistributes work) under the columnar pipeline."""
        config = mloc_col((32, 32), n_bins=8, target_block_bytes=8 * 1024)
        fs, column = _write_store(config, eq_field, n_ranks=4)
        robin = MLOCStore(
            fs, column.root, column.meta, n_ranks=4, scheduler="round-robin"
        )
        q = Query(value_range=(0.3, 0.7), output="values")
        fs.clear_cache()
        a = column.query(q)
        fs.clear_cache()
        b = robin.query(q)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.values, b.values)


# ----------------------------------------------------------------------
# PlanContext precompute correctness
# ----------------------------------------------------------------------


class TestPlanContext:
    def test_precomputes_match_meta(self, col_store):
        _, store = col_store
        ctx = store.context
        meta = store.meta
        assert ctx.counts64.dtype == np.int64
        assert np.array_equal(ctx.counts64, meta.counts)
        for bin_id in range(meta.config.n_bins):
            counts = meta.counts[bin_id].astype(np.int64)
            assert np.array_equal(
                ctx.pos_offsets[bin_id], np.concatenate(([0], np.cumsum(counts)))
            )
            assert np.array_equal(
                ctx.index_row_starts[bin_id], meta.index_blocks[bin_id][:, 0]
            )
            assert np.array_equal(
                ctx.data_row_starts[bin_id], meta.data_blocks[bin_id][:, 0]
            )

    def test_plan_matches_plan_query(self, col_store):
        _, store = col_store
        q = Query(value_range=(0.25, 0.75), region=((32, 96), (0, 64)))
        via_ctx = store.context.plan_uncached(q)
        direct = plan_query(
            store.grid,
            store.curve,
            store.scheme,
            q,
            hierarchical=store.meta.config.curve == "hierarchical",
        )
        for attr in ("bin_ids", "aligned", "cpos", "chunk_ids", "interior"):
            assert np.array_equal(getattr(via_ctx, attr), getattr(direct, attr))
        assert via_ctx.region == direct.region

    def test_requires_scheme_for_planning(self):
        grid = ChunkGrid((64, 64), (32, 32))
        ctx = PlanContext(grid, make_curve(mloc_col((32, 32)), grid))
        with pytest.raises(ValueError, match="bin scheme"):
            ctx.plan_uncached(Query(value_range=(0.0, 1.0)))

    def test_rejects_negative_cache(self):
        grid = ChunkGrid((64, 64), (32, 32))
        with pytest.raises(ValueError, match="plan_cache"):
            PlanContext(grid, make_curve(mloc_col((32, 32)), grid), plan_cache=-1)


class TestPlanCache:
    def test_lru_eviction_and_counters(self):
        cache = PlanCache(2)
        plans = {k: _synthetic_plan(2, 4, seed=k) for k in range(3)}
        assert cache.get(("a",)) is None
        cache.put(("a",), plans[0])
        cache.put(("b",), plans[1])
        assert cache.get(("a",)) is plans[0]  # refresh "a"
        cache.put(("c",), plans[2])  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is plans[0]
        assert cache.get(("c",)) is plans[2]
        assert len(cache) == 2
        assert cache.hits == 3
        assert cache.misses == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(0)

    def test_store_fingerprint_distinguishes_queries(self, col_store):
        _, store = col_store
        ctx = store.context
        base = Query(value_range=(0.2, 0.8), output="values")
        assert ctx.fingerprint(base) == ctx.fingerprint(
            Query(value_range=(0.2, 0.8), output="values")
        )
        for other in (
            Query(value_range=(0.2, 0.9), output="values"),
            Query(value_range=(0.2, 0.8), output="positions"),
            Query(value_range=(0.2, 0.8), output="values", plod_level=3),
            Query(
                value_range=(0.2, 0.8),
                region=((0, 32), (0, 32)),
                output="values",
            ),
        ):
            assert ctx.fingerprint(base) != ctx.fingerprint(other)
