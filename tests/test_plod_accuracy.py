"""Tests for PLoD error metrics (Table VI support)."""

import numpy as np
import pytest

from repro.plod.accuracy import (
    PLoDErrorReport,
    io_reduction,
    plod_error_report,
    relative_errors,
)


class TestRelativeErrors:
    def test_basic(self):
        orig = np.array([2.0, 4.0])
        approx = np.array([2.2, 3.8])
        assert np.allclose(relative_errors(orig, approx), [0.1, 0.05])

    def test_zero_original_uses_absolute(self):
        orig = np.array([0.0])
        approx = np.array([0.5])
        assert relative_errors(orig, approx)[0] == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros(2), np.zeros(3))


class TestIOReduction:
    def test_paper_level2_value(self):
        # Paper: PLoD level 2 fetches 3 of 8 bytes -> 62.5% I/O saved.
        assert io_reduction(2) == pytest.approx(0.625)

    def test_full_level_saves_nothing(self):
        assert io_reduction(7) == 0.0


class TestErrorReport:
    def test_full_precision_report(self, rng):
        r = plod_error_report(rng.uniform(0, 1, 100), 7)
        assert r == PLoDErrorReport(7, 8, 0.0, 0.0, 0.0)

    def test_report_fields_consistent(self, rng):
        v = rng.uniform(100, 1000, 10_000)
        r = plod_error_report(v, 2)
        assert r.bytes_per_point == 3
        assert 0 < r.mean_relative_error <= r.max_relative_error
        assert r.io_reduction == pytest.approx(0.625)

    def test_monotone_over_levels(self, rng):
        v = rng.uniform(100, 1000, 5_000)
        maxes = [plod_error_report(v, k).max_relative_error for k in range(1, 8)]
        assert all(a >= b for a, b in zip(maxes, maxes[1:]))
        assert maxes[-1] == 0.0
