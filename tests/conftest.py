"""Shared fixtures: deterministic RNGs, small datasets, built stores.

Store-building is the expensive part of the integration tests, so the
written stores are session-scoped and shared; tests must not mutate
them (queries are read-only by construction).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core import MLOCStore, MLOCWriter, mloc_col, mloc_isa, mloc_iso
from repro.datasets import gts_like, s3d_like
from repro.pfs import SimulatedPFS

# Hypothesis profiles.  Per-test ``@settings`` decorators override the
# parameters they set; everything else (notably ``derandomize``) comes
# from the loaded profile, so ``HYPOTHESIS_PROFILE=ci`` makes every
# property test — including the chaos suite — replay the exact same
# examples on every run, with example counts capped for CI wall-clock.
settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", derandomize=True, max_examples=25, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Base seed for fault-plan construction in the chaos tests.

    Override with ``REPRO_CHAOS_SEED`` to replay a failing chaos run:
    every :class:`~repro.pfs.faults.FaultPlan` a test builds derives
    its seed from this value, so one integer pins the whole schedule.
    """
    return int(os.environ.get("REPRO_CHAOS_SEED", "49152"))


@pytest.fixture(scope="session")
def gts_small() -> np.ndarray:
    """2-D 256x256 GTS-like field used across integration tests."""
    return gts_like((256, 256), seed=7)


@pytest.fixture(scope="session")
def s3d_small() -> np.ndarray:
    """3-D 48x48x48 S3D-like field."""
    return s3d_like((48, 48, 48), seed=8)


def _build(data: np.ndarray, maker, chunk_shape, **overrides):
    fs = SimulatedPFS()
    config = maker(
        chunk_shape=chunk_shape,
        n_bins=overrides.pop("n_bins", 16),
        target_block_bytes=overrides.pop("target_block_bytes", 8 * 1024),
        **overrides,
    )
    MLOCWriter(fs, "/store", config).write(data, variable="field")
    store = MLOCStore.open(fs, "/store", "field", n_ranks=4)
    return fs, store


@pytest.fixture(scope="session")
def col_store(gts_small):
    """(fs, store) for an MLOC-COL layout over the small GTS field."""
    return _build(gts_small, mloc_col, (32, 32))


@pytest.fixture(scope="session")
def vsm_store(gts_small):
    """MLOC-COL layout in V-S-M order (chunk-major PLoD cells)."""
    return _build(gts_small, mloc_col, (32, 32), level_order="VSM")


@pytest.fixture(scope="session")
def iso_store(gts_small):
    return _build(gts_small, mloc_iso, (32, 32))


@pytest.fixture(scope="session")
def isa_store(gts_small):
    return _build(gts_small, mloc_isa, (32, 32))


@pytest.fixture(scope="session")
def col_store_3d(s3d_small):
    return _build(s3d_small, mloc_col, (16, 16, 16))
