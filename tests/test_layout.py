"""Tests for the per-bin subfiling layout helpers."""

import pytest

from repro.pfs.costmodel import IOStats, PFSCostModel
from repro.pfs.layout import BinFileSet, aggregate_parallel_time, dataset_files
from repro.pfs.simfs import SimulatedPFS


class TestBinFileSet:
    def test_paths(self):
        files = BinFileSet("/data/var", 3)
        assert files.data_path(0) == "/data/var/bin0000.data"
        assert files.index_path(2) == "/data/var/bin0002.index"
        assert files.meta_path == "/data/var/meta"
        assert len(files.all_data_paths()) == 3
        assert len(files.all_index_paths()) == 3

    def test_bin_id_range_checked(self):
        files = BinFileSet("/d", 2)
        with pytest.raises(ValueError, match="out of range"):
            files.data_path(2)
        with pytest.raises(ValueError, match="out of range"):
            files.index_path(-1)

    def test_requires_positive_bins(self):
        with pytest.raises(ValueError):
            BinFileSet("/d", 0)

    def test_create_and_account(self):
        fs = SimulatedPFS()
        files = BinFileSet("/d/v", 2)
        files.create_all(fs)
        fs.append(files.data_path(0), b"12345")
        fs.append(files.data_path(1), b"12")
        fs.append(files.index_path(0), b"9")
        assert files.data_bytes(fs) == 7
        assert files.index_bytes(fs) == 1

    def test_trailing_slash_normalized(self):
        assert BinFileSet("/d/v/", 1).data_path(0) == "/d/v/bin0000.data"


class TestDatasetFiles:
    def test_lists_sizes_under_root(self):
        fs = SimulatedPFS()
        fs.write_file("/r/a", b"12")
        fs.write_file("/r/b", b"345")
        fs.write_file("/other", b"x")
        sizes = dataset_files(fs, "/r")
        assert sizes == {"/r/a": 2, "/r/b": 3}


class TestAggregateParallelTime:
    def test_empty_sessions(self):
        model = PFSCostModel()
        assert aggregate_parallel_time(model, []) == 0.0

    def test_combines_rank_ost_loads(self):
        model = PFSCostModel(ost_count=2, ost_bandwidth=100e6, client_bandwidth=1e12)
        fs = SimulatedPFS(model)
        fs.write_file("/f", bytes(2 * model.stripe_size))
        s1 = fs.session()
        s1.open("/f").read(0, model.stripe_size)
        fs.clear_cache()
        s2 = fs.session()
        s2.open("/f").read(model.stripe_size, model.stripe_size)
        t = aggregate_parallel_time(model, [s1, s2])
        serial = model.serial_time(IOStats(opens=1, seeks=1, bytes_read=model.stripe_size))
        # Two ranks on two different OSTs beat one rank doing both reads.
        assert 0 < t < 2 * serial
