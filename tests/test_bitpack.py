"""Tests for fixed-width bit packing (ISABELA's rank index storage)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitpack import bits_required, pack_uints, unpack_uints


class TestBitsRequired:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10)],
    )
    def test_values(self, value, expected):
        assert bits_required(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_required(-1)


class TestPackUnpack:
    def test_empty(self):
        assert pack_uints(np.empty(0, dtype=np.uint32), 10) == b""
        assert unpack_uints(b"", 10, 0).size == 0

    def test_exact_sizes(self):
        # 10 bits x 1024 values = 1280 bytes exactly.
        v = np.arange(1024, dtype=np.uint32)
        packed = pack_uints(v, 10)
        assert len(packed) == 1280
        assert np.array_equal(unpack_uints(packed, 10, 1024), v)

    def test_padding_final_byte(self):
        v = np.array([1, 2, 3], dtype=np.uint32)
        packed = pack_uints(v, 3)  # 9 bits -> 2 bytes
        assert len(packed) == 2

    def test_single_bit_width(self):
        v = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint32)
        assert np.array_equal(unpack_uints(pack_uints(v, 1), 1, 9), v)

    def test_32_bit_width(self):
        v = np.array([2**32 - 1, 0, 12345678], dtype=np.uint64)
        assert np.array_equal(unpack_uints(pack_uints(v, 32), 32, 3), v.astype(np.uint32))

    def test_value_too_large(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_uints(np.array([8], dtype=np.uint32), 3)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            pack_uints(np.array([1]), 0)
        with pytest.raises(ValueError):
            unpack_uints(b"\x00", 33, 1)

    def test_short_buffer(self):
        with pytest.raises(ValueError, match="need"):
            unpack_uints(b"\x00", 10, 5)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_roundtrip_property(data):
    bits = data.draw(st.integers(min_value=1, max_value=32))
    values = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=0,
            max_size=150,
        )
    )
    v = np.array(values, dtype=np.uint64)
    assert np.array_equal(
        unpack_uints(pack_uints(v, bits), bits, len(values)),
        v.astype(np.uint32),
    )
