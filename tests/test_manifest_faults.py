"""Crash safety of the append protocol under scripted write faults.

``FaultyPFS.fail_next_write`` crashes an append at chosen points —
mid member seal, before the manifest commit, or mid commit (torn) —
and these tests pin the recovery contract from FORMAT.md:

* a failed append leaves the previous generation *fully readable* and
  bit-identical (never a half-sealed member, never a lost one);
* a torn manifest commit is invisible to readers and retryable;
* leftovers of the crash are exactly what ``fsck --dataset`` reports
  (``manifest-torn`` / ``orphaned-member``), and a successful retry
  clears them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ManifestError, MLOCDataset, Query, load_manifest, mloc_col
from repro.datasets import gts_like
from repro.pfs.faults import FaultyPFS, WriteInterrupted
from repro.tools.fsck import check_dataset

QUERY = Query(region=((8, 40), (8, 40)), output="values")


def _config():
    return mloc_col(chunk_shape=(16, 16), n_bins=8, target_block_bytes=4096)


@pytest.fixture()
def faulty_dataset():
    """Two sealed timesteps on a fault-capable PFS, plus their answers."""
    fs = FaultyPFS()
    ds = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    for t in range(2):
        ds.append(gts_like((64, 64), seed=t), "temp", t)
    baseline = {
        t: ds.snapshot().store("temp", t).query(QUERY) for t in range(2)
    }
    return fs, ds, baseline


def _assert_previous_generation_intact(fs, baseline, *, generation=2):
    """A *fresh* handle sees the old generation, bit-identically."""
    check = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    assert check.generation == generation
    snap = check.snapshot()
    assert snap.timesteps("temp") == list(range(generation))
    for t, expected in baseline.items():
        got = snap.store("temp", t).query(QUERY)
        assert np.array_equal(got.positions, expected.positions)
        assert np.array_equal(got.values, expected.values)


def test_torn_manifest_commit_preserves_previous_generation(faulty_dataset):
    fs, ds, baseline = faulty_dataset
    fs.fail_next_write("manifest.g", torn_at=13)
    with pytest.raises(WriteInterrupted):
        ds.append(gts_like((64, 64), seed=2), "temp", 2)
    assert fs.injected.interrupted_writes == 1

    _assert_previous_generation_intact(fs, baseline)
    # The torn leftover is on disk but unreadable; fsck calls it out.
    issues = check_dataset(fs, "/ds")
    assert any(i.kind == "manifest-torn" for i in issues)

    # Retrying the append succeeds by overwriting the torn leftover.
    ds2 = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    ds2.append(gts_like((64, 64), seed=2), "temp", 2)
    assert ds2.generation == 3
    assert check_dataset(fs, "/ds") == []


def test_lost_manifest_commit_leaves_only_orphans(faulty_dataset):
    """Crash *before* the manifest write is durable: the new member's
    files exist but no generation references them."""
    fs, ds, baseline = faulty_dataset
    fs.fail_next_write("manifest.g")  # nothing committed
    with pytest.raises(WriteInterrupted):
        ds.append(gts_like((64, 64), seed=2), "temp", 2)

    _assert_previous_generation_intact(fs, baseline)
    issues = check_dataset(fs, "/ds")
    orphans = [i for i in issues if i.kind == "orphaned-member"]
    assert len(orphans) == 1
    assert "temp@000002" in orphans[0].location
    # A half-sealed member is never *exposed*: snapshots don't list it.
    snap = MLOCDataset(fs, "/ds", _config(), n_ranks=4).snapshot()
    assert not snap.has("temp", 2)


def test_interrupted_member_seal_never_commits(faulty_dataset):
    """Crash mid member subfile write: generation unchanged, nothing
    half-sealed becomes visible, prior data bit-identical."""
    fs, ds, baseline = faulty_dataset
    fs.fail_next_write("temp@000002", torn_at=7)
    with pytest.raises(WriteInterrupted):
        ds.append(gts_like((64, 64), seed=2), "temp", 2)

    assert load_manifest(fs, "/ds").generation == 2
    _assert_previous_generation_intact(fs, baseline)
    # Whatever partial files exist are orphans, not members.
    issues = check_dataset(fs, "/ds")
    assert {i.kind for i in issues} <= {"orphaned-member"}


def test_repeated_crashes_then_success(faulty_dataset):
    """Every failed attempt is recoverable; the first clean attempt
    commits and fsck comes back green (modulo earlier orphans)."""
    fs, ds, baseline = faulty_dataset
    for attempt, (match, torn) in enumerate(
        [("temp@000002", None), ("manifest.g", 5), ("manifest.g", None)]
    ):
        fs.fail_next_write(match, torn_at=torn)
        handle = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
        with pytest.raises(WriteInterrupted):
            handle.append(gts_like((64, 64), seed=2), "temp", 2)
        _assert_previous_generation_intact(fs, baseline)

    final = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    final.append(gts_like((64, 64), seed=2), "temp", 2)
    assert final.generation == 3
    assert final.snapshot().timesteps("temp") == [0, 1, 2]
    assert check_dataset(fs, "/ds") == []


def test_stale_handle_after_crash_refuses_wrong_generation(faulty_dataset):
    """A handle that crashed mid-append can keep appending: its next
    attempt reloads the on-disk chain rather than trusting memory."""
    fs, ds, baseline = faulty_dataset
    fs.fail_next_write("manifest.g", torn_at=3)
    with pytest.raises(WriteInterrupted):
        ds.append(gts_like((64, 64), seed=2), "temp", 2)
    # Same (now stale) handle retries a *different* timestep: the chain
    # advances from the last durable generation, not the in-memory one.
    ds.append(gts_like((64, 64), seed=3), "temp", 3)
    assert load_manifest(fs, "/ds").generation == 3
    snap = MLOCDataset(fs, "/ds", _config(), n_ranks=4).snapshot()
    assert snap.timesteps("temp") == [0, 1, 3]
    with pytest.raises(ManifestError, match="already sealed"):
        ds.append(gts_like((64, 64), seed=9), "temp", 3)
