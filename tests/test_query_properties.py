"""Property-based end-to-end tests: random queries vs brute force.

A session-scoped MLOC-COL store over a small GTS field is hammered
with hypothesis-generated value/region constraints; every answer must
match NumPy exactly (the codec is lossless).  This is the strongest
correctness net over the planner + executor + index + codec stack.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Query


@st.composite
def value_ranges(draw):
    lo_q = draw(st.floats(min_value=0.0, max_value=0.95))
    width = draw(st.floats(min_value=0.001, max_value=0.5))
    return lo_q, min(lo_q + width, 1.0)


@st.composite
def regions_256(draw):
    region = []
    for _ in range(2):
        lo = draw(st.integers(min_value=0, max_value=255))
        hi = draw(st.integers(min_value=lo + 1, max_value=256))
        region.append((lo, hi))
    return tuple(region)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(qrange=value_ranges())
def test_random_value_constraints(col_store, gts_small, qrange):
    fs, store = col_store
    flat = gts_small.reshape(-1)
    lo, hi = np.quantile(flat, [qrange[0], qrange[1]])
    result = store.query(Query(value_range=(lo, hi), output="values"))
    expect = np.flatnonzero((flat >= lo) & (flat <= hi))
    assert np.array_equal(result.positions, expect)
    assert np.array_equal(result.values, flat[expect])


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(region=regions_256())
def test_random_regions(col_store, gts_small, region):
    fs, store = col_store
    flat = gts_small.reshape(-1)
    result = store.query(Query(region=region, output="values"))
    mask = np.zeros(gts_small.shape, dtype=bool)
    mask[region[0][0] : region[0][1], region[1][0] : region[1][1]] = True
    expect = np.flatnonzero(mask.reshape(-1))
    assert np.array_equal(result.positions, expect)
    assert np.array_equal(result.values, flat[expect])


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(qrange=value_ranges(), region=regions_256())
def test_random_combined_constraints(col_store, gts_small, qrange, region):
    fs, store = col_store
    flat = gts_small.reshape(-1)
    lo, hi = np.quantile(flat, [qrange[0], qrange[1]])
    result = store.query(
        Query(value_range=(lo, hi), region=region, output="values")
    )
    mask = np.zeros(gts_small.shape, dtype=bool)
    mask[region[0][0] : region[0][1], region[1][0] : region[1][1]] = True
    expect = np.flatnonzero(mask.reshape(-1) & (flat >= lo) & (flat <= hi))
    assert np.array_equal(result.positions, expect)
    assert np.array_equal(result.values, flat[expect])


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    region=regions_256(),
    level=st.integers(min_value=1, max_value=7),
)
def test_random_plod_levels_bounded_error(col_store, gts_small, region, level):
    fs, store = col_store
    flat = gts_small.reshape(-1)
    result = store.query(Query(region=region, output="values", plod_level=level))
    truth = flat[result.positions]
    if level == 7:
        assert np.array_equal(result.values, truth)
    else:
        mantissa_bits_kept = max(8 * (level + 1) - 12, 4)
        rel = np.abs(result.values - truth) / np.abs(truth)
        assert rel.max() <= 2.0 ** -(mantissa_bits_kept - 1)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    positions=st.sets(
        st.integers(min_value=0, max_value=256 * 256 - 1), min_size=1, max_size=300
    )
)
def test_random_fetch_positions(col_store, gts_small, positions):
    from repro.index.bitmap import Bitmap

    fs, store = col_store
    flat = gts_small.reshape(-1)
    pos = np.array(sorted(positions), dtype=np.int64)
    bitmap = Bitmap.from_positions(pos, store.n_elements)
    result = store.fetch_positions(bitmap)
    assert np.array_equal(result.positions, pos)
    assert np.array_equal(result.values, flat[pos])
