"""Tests for the sequential-scan baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.seqscan import SeqScanStore, region_runs
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS


@pytest.fixture(scope="module")
def scan_setup():
    fs = SimulatedPFS()
    data = gts_like((128, 128), seed=3)
    store = SeqScanStore.build(fs, "/scan", data, n_ranks=4)
    return fs, data, store


class TestRegionRuns:
    def test_inner_partial(self):
        starts, length = region_runs((8, 8), ((2, 5), (3, 7)))
        assert length == 4
        assert starts.tolist() == [19, 27, 35]

    def test_full_inner_axes_merge(self):
        starts, length = region_runs((4, 4), ((1, 3), (0, 4)))
        assert length == 8
        assert starts.tolist() == [4]

    def test_whole_array_single_run(self):
        starts, length = region_runs((4, 4, 4), ((0, 4), (0, 4), (0, 4)))
        assert length == 64
        assert starts.tolist() == [0]

    def test_partial_outer_axis_only(self):
        starts, length = region_runs((8, 4), ((2, 6), (0, 4)))
        assert length == 16
        assert starts.tolist() == [8]

    def test_3d_runs(self):
        starts, length = region_runs((4, 4, 4), ((1, 2), (1, 3), (2, 4)))
        assert length == 2
        assert starts.tolist() == [1 * 16 + 1 * 4 + 2, 1 * 16 + 2 * 4 + 2]

    def test_1d(self):
        starts, length = region_runs((16,), ((5, 9),))
        assert length == 4 and starts.tolist() == [5]


class TestQueries:
    def test_region_query_exact(self, scan_setup):
        fs, data, store = scan_setup
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.25, 0.35])
        fs.clear_cache()
        r = store.region_query((lo, hi))
        assert np.array_equal(r.positions, np.flatnonzero((flat >= lo) & (flat <= hi)))
        assert r.values is None

    def test_region_query_reads_everything(self, scan_setup):
        fs, data, store = scan_setup
        fs.clear_cache()
        r = store.region_query((0.0, 0.1))
        assert r.stats["bytes_read"] == data.nbytes

    def test_value_query_exact(self, scan_setup):
        fs, data, store = scan_setup
        region = ((10, 50), (30, 90))
        fs.clear_cache()
        r = store.value_query(region)
        sub = data[10:50, 30:90]
        assert r.n_results == sub.size
        assert np.array_equal(r.values, data.reshape(-1)[r.positions])
        assert np.allclose(np.sort(r.values), np.sort(sub.reshape(-1)))

    def test_value_query_reads_only_region(self, scan_setup):
        fs, data, store = scan_setup
        fs.clear_cache()
        r = store.value_query(((0, 16), (0, 128)))
        assert r.stats["bytes_read"] == 16 * 128 * 8

    def test_storage_accounting(self, scan_setup):
        fs, data, store = scan_setup
        assert store.storage_bytes() == {"data": data.nbytes, "index": 0}

    def test_rank_invariance(self, scan_setup):
        fs, data, store = scan_setup
        flat = data.reshape(-1)
        lo, hi = np.quantile(flat, [0.4, 0.5])
        single = SeqScanStore(fs, "/scan", data.shape, n_ranks=1)
        fs.clear_cache()
        a = single.region_query((lo, hi))
        fs.clear_cache()
        b = store.region_query((lo, hi))
        assert np.array_equal(a.positions, b.positions)
        assert a.times.io >= b.times.io


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_region_runs_cover_exactly_property(data):
    ndims = data.draw(st.integers(min_value=1, max_value=3))
    shape = tuple(data.draw(st.integers(min_value=2, max_value=8)) for _ in range(ndims))
    region = []
    for extent in shape:
        lo = data.draw(st.integers(min_value=0, max_value=extent - 1))
        hi = data.draw(st.integers(min_value=lo + 1, max_value=extent))
        region.append((lo, hi))
    starts, length = region_runs(shape, tuple(region))
    covered = np.concatenate([np.arange(s, s + length) for s in starts])
    mask = np.zeros(shape, dtype=bool)
    mask[tuple(slice(lo, hi) for lo, hi in region)] = True
    expected = np.flatnonzero(mask.reshape(-1))
    assert np.array_equal(np.sort(covered), expected)
