"""ISABELA-specific tests: error bounds, ratios, window handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.isabela import IsabelaCodec


@pytest.fixture()
def codec() -> IsabelaCodec:
    return IsabelaCodec(window=256, n_coeffs=16, error_rate=1e-3)


def turbulent(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(0, 0.05, n)) + 100.0 + rng.normal(0, 0.5, n)


class TestErrorBound:
    def test_bound_holds_smooth(self, codec):
        v = turbulent(4096)
        out = codec.decode(codec.encode(v), v.size)
        assert np.abs(out - v).max() <= codec.error_bound(v) * (1 + 1e-9)

    def test_bound_holds_hard_data(self, codec, rng):
        v = rng.uniform(-1000, 1000, 2048)
        out = codec.decode(codec.encode(v), v.size)
        assert np.abs(out - v).max() <= codec.error_bound(v) * (1 + 1e-9)

    def test_tighter_error_rate(self):
        v = turbulent(2048)
        loose = IsabelaCodec(window=256, n_coeffs=16, error_rate=1e-2)
        tight = IsabelaCodec(window=256, n_coeffs=16, error_rate=1e-5)
        err_loose = np.abs(loose.decode(loose.encode(v), v.size) - v).max()
        err_tight = np.abs(tight.decode(tight.encode(v), v.size) - v).max()
        assert err_tight < err_loose

    def test_empty_bound(self, codec):
        assert codec.error_bound(np.empty(0)) == 0.0


class TestCompressionRatio:
    def test_paper_scale_ratio(self):
        """Table I: MLOC-ISA stores 8 GB in 1.6 GB -> ~0.2 ratio.  The
        dominant term is the bit-packed rank index (10 bits/value at
        window 1024 = 15.6%)."""
        codec = IsabelaCodec(window=1024, n_coeffs=32, error_rate=1e-3)
        v = turbulent(65536)
        ratio = len(codec.encode(v)) / v.nbytes
        assert 0.15 < ratio < 0.30

    def test_beats_zlib_on_turbulence(self):
        import zlib

        codec = IsabelaCodec(window=1024, n_coeffs=32, error_rate=1e-3)
        v = turbulent(32768, seed=5)
        assert len(codec.encode(v)) < len(zlib.compress(v.tobytes(), 6))


class TestWindowHandling:
    def test_exact_multiple(self, codec):
        v = turbulent(512)
        assert np.abs(codec.decode(codec.encode(v), 512) - v).max() <= codec.error_bound(v)

    def test_short_tail_window(self, codec):
        v = turbulent(256 + 100)
        out = codec.decode(codec.encode(v), v.size)
        assert np.abs(out - v).max() <= codec.error_bound(v) * (1 + 1e-9)

    def test_tail_below_fit_threshold_is_raw(self, codec):
        # Tail of 50 < 4 * n_coeffs: stored losslessly.
        v = turbulent(256 + 50)
        out = codec.decode(codec.encode(v), v.size)
        assert np.array_equal(out[256:], v[256:])

    def test_all_raw_when_tiny(self, codec):
        v = turbulent(40)
        assert np.array_equal(codec.decode(codec.encode(v), 40), v)

    def test_empty(self, codec):
        assert codec.decode(codec.encode(np.empty(0)), 0).size == 0

    def test_constant_window(self, codec):
        v = np.full(512, 7.25)
        out = codec.decode(codec.encode(v), 512)
        assert np.abs(out - v).max() <= codec.error_bound(v) * (1 + 1e-9)

    def test_all_zero_window(self, codec):
        v = np.zeros(512)
        out = codec.decode(codec.encode(v), 512)
        assert np.abs(out).max() <= 1.0  # step falls back to 1.0 for scale 0


class TestValidation:
    def test_constructor_constraints(self):
        with pytest.raises(ValueError, match="window"):
            IsabelaCodec(window=2)
        with pytest.raises(ValueError, match="n_coeffs"):
            IsabelaCodec(n_coeffs=3)
        with pytest.raises(ValueError, match="4 \\* n_coeffs"):
            IsabelaCodec(window=64, n_coeffs=32)
        with pytest.raises(ValueError, match="error_rate"):
            IsabelaCodec(error_rate=0)

    def test_rejects_2d(self, codec):
        with pytest.raises(ValueError, match="1-D"):
            codec.encode(np.zeros((4, 4)))

    def test_lossy_flag(self, codec):
        assert codec.lossless is False


class TestSortedWindowMechanism:
    def test_permutation_restores_order(self, codec):
        """The defining ISABELA property: values come back in original
        order, not sorted order."""
        v = turbulent(256)[::-1].copy()  # decreasing-ish
        out = codec.decode(codec.encode(v), 256)
        # correlation with original order must be near-perfect
        assert np.corrcoef(out, v)[0, 1] > 0.999


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=700,
    )
)
def test_error_bound_property(values):
    codec = IsabelaCodec(window=128, n_coeffs=8, error_rate=1e-3)
    v = np.array(values, dtype=np.float64)
    out = codec.decode(codec.encode(v), v.size)
    assert np.abs(out - v).max() <= codec.error_bound(v) * (1 + 1e-9) + 1e-12
